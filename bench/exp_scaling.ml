(* Table III — running time and memory of the decomposition solver vs the
   exact LP reference, as the library grows (Sec. VII-E).

   The paper's CPLEX baseline dies at 20K videos on 48 GB; our dense
   simplex reference saturates at a few dozen videos on an 8-VHO network —
   the same wall, earlier, which is exactly the point of the experiment:
   the monolithic LP grows superlinearly while the decomposition stays
   linear. Following the paper, decomposition numbers aggregate six
   scenarios (3 networks x 2 disk sizes) by geometric mean. *)

let reference_network () =
  Vod_topology.Topologies.ring_plus_chords ~name:"ref8" ~n:8 ~target_edges:11 ~seed:8

let simplex_sizes =
  match Common.scale with
  | Quick -> [ 4; 8 ]
  | Default -> [ 5; 10; 20 ]
  | Full -> [ 5; 10; 20; 40 ]
  (* The 40-video reference point alone costs minutes of dense simplex;
     at huge scale that budget belongs to the million-video end-to-end
     run below, so the reference side stays at the default grid. *)
  | Huge -> [ 5; 10; 20 ]

(* The huge tier abbreviates the multi-network geomean grid: its
   1M-video point is the dedicated end-to-end exhibit below, measured
   once with real playout instead of six times solve-only. *)
let epf_sizes =
  match Common.scale with
  | Quick -> [ 500; 1000; 2000 ]
  | Default -> [ 1000; 2000; 5000; 10_000; 20_000 ]
  | Full -> [ 5_000; 10_000; 20_000; 50_000; 100_000; 200_000 ]
  | Huge -> [ 10_000; 100_000 ]

let words_to_gb w = w *. 8.0 /. 1e9

let simplex_reference () =
  Common.section "Table III (reference side) — exact LP via simplex";
  let graph = reference_network () in
  let rows =
    List.map
      (fun n_videos ->
        let sc =
          Vod_core.Scenario.make ~days:7 ~requests_per_video_per_day:8.0 ~seed:2
            ~graph ~n_videos ()
        in
        let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
        let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
        let inst =
          Vod_placement.Instance.create ~graph ~catalog:sc.Vod_core.Scenario.catalog
            ~demand ~disk_gb:disk
            ~link_capacity_mbps:(Vod_placement.Instance.uniform_links graph 500.0)
            ()
        in
        let gc0 = Gc.quick_stat () in
        let result, dt = Common.timed (fun () -> Vod_placement.Lp_check.solve_reference inst) in
        let gc1 = Gc.quick_stat () in
        let words =
          gc1.Gc.minor_words +. gc1.Gc.major_words -. gc1.Gc.promoted_words
          -. (gc0.Gc.minor_words +. gc0.Gc.major_words -. gc0.Gc.promoted_words)
        in
        let status =
          match result with
          | Vod_lp.Simplex.Optimal { objective; _ } -> Printf.sprintf "opt %.0f" objective
          | Vod_lp.Simplex.Infeasible -> "infeasible"
          | Vod_lp.Simplex.Unbounded -> "unbounded"
        in
        [
          string_of_int n_videos;
          Printf.sprintf "%.2f" dt;
          Printf.sprintf "%.3f" (words_to_gb words);
          status;
        ])
      simplex_sizes
  in
  Vod_util.Table.print
    ~header:[ "videos (8 VHOs)"; "time (s)"; "alloc (GB)"; "result" ]
    rows;
  Common.note
    "paper: CPLEX needs 894s/10GB at 5K videos and cannot fit 50K in 48GB; the monolithic LP's growth is superlinear."

let decomposition_scaling () =
  Common.section "Table III (decomposition side) — EPF solver scaling";
  let networks =
    [
      Vod_topology.Topologies.tiscali ();
      Vod_topology.Topologies.sprint ();
      Vod_topology.Topologies.ebone ();
    ]
  in
  (* Fewer passes for the scaling study: absolute quality is measured
     elsewhere; here the paper's metric is time/memory growth. *)
  let params =
    { Common.solve_params with Vod_epf.Engine.max_passes = 20 }
  in
  let rows =
    List.map
      (fun n_videos ->
        let times = ref [] and mems = ref [] and gaps = ref [] in
        List.iter
          (fun graph ->
            List.iter
              (fun disk_mult ->
                let sc =
                  Vod_core.Scenario.make ~days:7
                    ~requests_per_video_per_day:4.0 ~seed:3 ~graph ~n_videos ()
                in
                let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
                let disk = Vod_core.Scenario.uniform_disk sc ~multiple:disk_mult in
                let inst =
                  Vod_placement.Instance.create ~graph
                    ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk
                    ~link_capacity_mbps:
                      (Vod_placement.Instance.uniform_links graph 100_000.0)
                    ()
                in
                let report, solve_s =
                  Common.timed (fun () -> Vod_placement.Solve.solve ~params inst)
                in
                times := solve_s :: !times;
                (* Memory footprint: live heap words with the instance,
                   blocks and solution still reachable (allocation volume
                   would overstate residency by the GC churn factor). *)
                Gc.full_major ();
                let live = float_of_int (Gc.stat ()).Gc.live_words in
                ignore (Sys.opaque_identity (inst, report));
                mems := words_to_gb live :: !mems;
                gaps := Vod_placement.Solution.gap report.Vod_placement.Solve.solution :: !gaps)
              [ 2.0; 11.0 ] (* paper: 2x aggregate; "large" = VHO holds 20% *))
          networks;
        let gmean l = Vod_util.Stats_acc.geometric_mean (Array.of_list l) in
        [
          string_of_int n_videos;
          Printf.sprintf "%.2f" (gmean !times);
          Printf.sprintf "%.3f" (gmean !mems);
          Common.fmt_pct (Vod_util.Stats_acc.mean (Array.of_list !gaps));
        ])
      epf_sizes
  in
  Vod_util.Table.print
    ~header:[ "videos"; "time (s, geomean)"; "live heap (GB, geomean)"; "mean gap vs LB" ]
    rows;
  Common.note
    "paper: 1.39s/0.11GB at 5K growing ~linearly to 98.6s/15GB at 1M; speedup over CPLEX 644x-2071x."

(* ---- huge tier: million-video end-to-end ----------------------------

   VOD_SCALE=huge only. One week of a 55-VHO backbone with a
   million-video library: generate a multi-million-request trace
   straight into the compact struct-of-arrays store (no boxed request is
   ever staged), extract demand from the columns, solve the placement,
   and play the week back through the allocation-free SoA serving loop.
   Each step reports wall-clock and the process peak RSS; the same
   numbers land in the metrics registry as [huge/*_seconds] gauges plus
   [mem/peak_rss_bytes] / [mem/trace_store_bytes] (METRICS.md). This is
   the paper's 1M row of Table III taken past the solver: solve AND
   serve at library scale on one box. *)

let huge_days = 7

(* ~3.5M requests over the week. A million-video library is far larger
   than its daily audience (the long-tail regime the paper targets), so
   volume is set absolutely rather than per video. *)
let huge_mean_daily_requests = 500_000.0

let fmt_rss () =
  match Vod_obs.Memstat.peak_rss_bytes () with
  | Some b -> Printf.sprintf "%.2f" (float_of_int b /. 1e9)
  | None -> "-"

let huge_end_to_end () =
  Common.section
    (Printf.sprintf "Huge tier — %d-video end-to-end (SoA store, %d days)"
       Common.huge_videos huge_days);
  let graph = Vod_topology.Topologies.backbone55 () in
  let n_vhos = Vod_topology.Graph.n_nodes graph in
  let step label seconds =
    Vod_obs.Memstat.sample_peak_rss ();
    Vod_obs.Obs.set_gauge (Printf.sprintf "huge/%s_seconds" label) seconds;
    [ label; Printf.sprintf "%.1f" seconds; fmt_rss () ]
  in
  let catalog, cat_s =
    Common.timed (fun () ->
        Vod_workload.Catalog.generate
          (Vod_workload.Catalog.default_params ~n:Common.huge_videos
             ~days:huge_days ~seed:43))
  in
  let row_cat = step "catalog" cat_s in
  let store, gen_s =
    Common.timed (fun () ->
        Vod_workload.Tracegen.generate_soa
          (Vod_workload.Tracegen.default_params ~catalog
             ~populations:graph.Vod_topology.Graph.populations
             ~mean_daily_requests:huge_mean_daily_requests ~seed:44))
  in
  let n_requests = Vod_workload.Trace_soa.length store in
  let row_gen = step "generate" gen_s in
  Common.note "trace: %d requests, store resident %.0f MB (16 B/request)"
    n_requests
    (float_of_int (Vod_workload.Trace_soa.resident_bytes store) /. 1e6);
  let demand, demand_s =
    Common.timed (fun () ->
        Vod_workload.Demand.of_soa catalog ~n_vhos ~day0:0 ~days:huge_days
          ~n_windows:2 ~window_s:3600.0 store ~lo:0 ~hi:n_requests)
  in
  let row_demand = step "demand" demand_s in
  let disk_gb =
    Vod_placement.Instance.uniform_disk
      ~total_gb:(2.0 *. Vod_workload.Catalog.total_size_gb catalog)
      n_vhos
  in
  let inst, inst_s =
    Common.timed (fun () ->
        Vod_placement.Instance.create ~graph ~catalog ~demand ~disk_gb
          ~link_capacity_mbps:
            (Vod_placement.Instance.uniform_links graph 1_000_000.0)
          ())
  in
  let row_inst = step "instance" inst_s in
  (* Few passes: at this size the point is completing the end-to-end
     cycle and measuring its footprint, not squeezing the last percent
     of gap (Table III's smaller rows measure convergence). *)
  let params =
    { Common.solve_params with Vod_epf.Engine.max_passes = 6 }
  in
  let report, solve_s =
    Common.timed (fun () -> Vod_placement.Solve.solve ~params inst)
  in
  let row_solve = step "solve" solve_s in
  let paths = Vod_topology.Paths.compute graph in
  let fleet, fleet_s =
    Common.timed (fun () ->
        Vod_cache.Fleet.mip ~solution:report.Vod_placement.Solve.solution
          ~paths ~catalog ~cache_gb:(Array.make n_vhos 0.0))
  in
  let row_fleet = step "fleet" fleet_s in
  let metrics, play_s =
    Common.timed (fun () ->
        let m, _ = Vod_serve.Loop.run_soa ~graph ~paths ~catalog ~fleet ~store () in
        m)
  in
  let row_play = step "playout" play_s in
  Vod_obs.Obs.set_gauge "huge/videos" (float_of_int Common.huge_videos);
  Vod_obs.Obs.set_gauge "huge/requests" (float_of_int n_requests);
  Vod_util.Table.print
    ~header:[ "phase"; "time (s)"; "peak RSS after (GB)" ]
    [ row_cat; row_gen; row_demand; row_inst; row_solve; row_fleet; row_play ];
  Common.note
    "playout: %d requests, local %s, peak link %.0f Mb/s, gap vs LB %s"
    metrics.Vod_sim.Metrics.requests
    (Common.fmt_pct (Vod_sim.Metrics.local_fraction metrics))
    (Vod_sim.Metrics.max_link_mbps metrics)
    (Common.fmt_pct
       (Vod_placement.Solution.gap report.Vod_placement.Solve.solution));
  Common.note
    "paper: CPLEX cannot fit 1M videos in 48 GB; the decomposition solves and SERVES the million-video week in one process."

let run () =
  simplex_reference ();
  decomposition_scaling ();
  if Common.scale = Huge then huge_end_to_end ()
