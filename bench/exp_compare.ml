(* The head-to-head evaluation of Sec. VII-B:

   Fig. 5 — peak link bandwidth over the 3 playout weeks (daily maxima of
            the 5-minute series), MIP vs Random+LRU / Random+LFU /
            Top-100+LRU.
   Fig. 6 — aggregate bandwidth across all links (daily maxima of the
            5-minute sums).
   Fig. 7 — disk usage split by popularity class under the MIP placement.
   Fig. 8 — number of copies per video vs demand rank.
   Fig. 9 — LRU cache dynamics (remote serves, non-cachable requests). *)

let daily_maxima (metrics : Vod_sim.Metrics.t) series =
  let bins_per_day = int_of_float (86_400.0 /. metrics.Vod_sim.Metrics.bin_s) in
  let days = metrics.Vod_sim.Metrics.n_bins / bins_per_day in
  Array.init days (fun d ->
      let acc = ref 0.0 in
      for b = d * bins_per_day to min (((d + 1) * bins_per_day) - 1) (Array.length series - 1) do
        if series.(b) > !acc then acc := series.(b)
      done;
      !acc)

let run (sc : Vod_core.Scenario.t) =
  Common.section "Figs. 5-9 — MIP vs caching baselines (Sec. VII-B)";
  let link_mbps = Common.calibrate_link_capacity sc ~disk_multiple:2.0 in
  Common.note "calibrated MIP link constraint: %.0f Mb/s (paper: 1 Gb/s)" link_mbps;
  let cfg = Common.pipeline_config ~disk_multiple:2.0 ~link_capacity_mbps:link_mbps sc in
  let schemes =
    [
      Vod_core.Pipeline.Mip Common.mip_config;
      Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lru;
      Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lfu;
      Vod_core.Pipeline.Topk_lru 100;
    ]
  in
  (* One playout per scheme, fanned out across the domain pool; each
     fleet is independent and deterministic, so only wall-clock
     changes. Notes are printed after the join to keep output ordered. *)
  let results =
    Common.parallel_runs
      (List.map
         (fun s () -> Common.timed (fun () -> Vod_core.Pipeline.run cfg s))
         schemes)
    |> List.map (fun (r, dt) ->
           Common.note "ran %s in %.1fs" r.Vod_core.Pipeline.scheme_name dt;
           r)
  in
  (* ---- Fig. 5: daily peak link bandwidth ---- *)
  Common.section "Fig. 5 — peak link bandwidth (daily max of 5-min series, Mb/s)";
  let peaks =
    List.map
      (fun (r : Vod_core.Pipeline.result) ->
        daily_maxima r.Vod_core.Pipeline.metrics
          (Vod_sim.Metrics.peak_series r.Vod_core.Pipeline.metrics))
      results
  in
  let days = Array.length (List.hd peaks) in
  let header = "day" :: List.map (fun r -> r.Vod_core.Pipeline.scheme_name) results in
  let rows = ref [] in
  for d = Common.days - 19 to days - 1 do
    rows :=
      (string_of_int d :: List.map (fun p -> Printf.sprintf "%.0f" p.(d)) peaks) :: !rows
  done;
  Vod_util.Table.print ~header (List.rev !rows);
  let overall =
    List.map
      (fun (r : Vod_core.Pipeline.result) ->
        Vod_sim.Metrics.max_link_mbps r.Vod_core.Pipeline.metrics)
      results
  in
  Vod_util.Table.print ~header:("" :: List.tl header)
    [ "overall max (Mb/s)" :: List.map (Printf.sprintf "%.0f") overall ];
  Common.note
    "paper: MIP 1364 Mb/s vs LRU 2400 / LFU 2366 / Top-100 2938 — MIP needs ~half the peak.";
  (* ---- Fig. 6: aggregate bandwidth ---- *)
  Common.section "Fig. 6 — aggregate bandwidth across links (daily max of 5-min sums, Mb/s)";
  let aggs =
    List.map
      (fun (r : Vod_core.Pipeline.result) ->
        daily_maxima r.Vod_core.Pipeline.metrics
          (Vod_sim.Metrics.aggregate_series r.Vod_core.Pipeline.metrics))
      results
  in
  let rows = ref [] in
  for d = Common.days - 19 to days - 1 do
    rows :=
      (string_of_int d :: List.map (fun p -> Printf.sprintf "%.0f" p.(d)) aggs) :: !rows
  done;
  Vod_util.Table.print ~header (List.rev !rows);
  Vod_util.Table.print
    ~header:("" :: List.tl header)
    [
      "total transfer (GB x hop)"
      :: List.map
           (fun (r : Vod_core.Pipeline.result) ->
             Printf.sprintf "%.0f" r.Vod_core.Pipeline.metrics.Vod_sim.Metrics.total_gb_hops)
           results;
      "served locally"
      :: List.map
           (fun (r : Vod_core.Pipeline.result) ->
             Common.fmt_pct (Vod_sim.Metrics.local_fraction r.Vod_core.Pipeline.metrics))
           results;
    ];
  Common.note "paper: MIP consistently transfers fewer bytes; LRU ~ LFU; Top-100 worst.";
  (* ---- Fig. 7 / Fig. 8: placement analytics from the MIP's last solve ---- *)
  (match Vod_core.Pipeline.last_solution (List.hd results) with
  | None -> ()
  | Some sol ->
      let demand = Vod_core.Scenario.demand_of_week sc ~day0:(Common.days - 7) () in
      let ranked = Vod_workload.Demand.rank_by_demand demand in
      Common.section "Fig. 7 — disk usage by popularity class (MIP placement)";
      let catalog = sc.Vod_core.Scenario.catalog in
      let class_of =
        let cls = Array.make (Vod_workload.Catalog.n_videos catalog) 2 in
        Array.iteri
          (fun rank video ->
            if rank < 100 then cls.(video) <- 0
            else if rank < Array.length ranked / 5 then cls.(video) <- 1)
          ranked;
        cls
      in
      let usage = Array.make_matrix 3 1 0.0 in
      Array.iteri
        (fun video vhos ->
          let s = Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video) in
          usage.(class_of.(video)).(0) <-
            usage.(class_of.(video)).(0) +. (s *. float_of_int (Array.length vhos)))
        sol.Vod_placement.Solution.stored;
      let total = usage.(0).(0) +. usage.(1).(0) +. usage.(2).(0) in
      Vod_util.Table.print
        ~header:[ "class"; "disk used (GB)"; "share" ]
        [
          [ "top-100"; Printf.sprintf "%.0f" usage.(0).(0); Common.fmt_pct (usage.(0).(0) /. total) ];
          [ "medium (next 20%)"; Printf.sprintf "%.0f" usage.(1).(0); Common.fmt_pct (usage.(1).(0) /. total) ];
          [ "unpopular"; Printf.sprintf "%.0f" usage.(2).(0); Common.fmt_pct (usage.(2).(0) /. total) ];
        ];
      Common.note
        "paper: top-100 occupy a small share; medium-popular videos take >30%% of total disk.";
      Common.section "Fig. 8 — number of copies vs demand rank (MIP placement)";
      let sample_ranks = [ 0; 1; 2; 4; 9; 19; 49; 99; 199; 499; 999 ] in
      let rows =
        List.filter_map
          (fun r ->
            if r < Array.length ranked then
              Some
                [
                  string_of_int (r + 1);
                  string_of_int (Vod_placement.Solution.copies sol ranked.(r));
                  Printf.sprintf "%.0f" (Vod_workload.Demand.video_requests demand ranked.(r));
                ]
            else None)
          sample_ranks
      in
      Vod_util.Table.print ~header:[ "demand rank"; "copies"; "weekly requests" ] rows;
      let multi =
        Array.fold_left
          (fun acc vhos -> if Array.length vhos > 1 then acc + 1 else acc)
          0 sol.Vod_placement.Solution.stored
      in
      Common.note
        "paper: popular videos get more copies but are not replicated everywhere; >1500 of 2000 ranked videos have multiple copies. measured: %d videos with multiple copies."
        multi);
  (* ---- Fig. 9: LRU cache dynamics ---- *)
  Common.section "Fig. 9 — LRU cache dynamics (Random+LRU baseline)";
  (match results with
  | _ :: (lru : Vod_core.Pipeline.result) :: _ ->
      let m = lru.Vod_core.Pipeline.metrics in
      Vod_util.Table.print
        ~header:[ "metric"; "value" ]
        [
          [ "requests"; string_of_int m.Vod_sim.Metrics.requests ];
          [ "served remotely"; Common.fmt_pct (1.0 -. Vod_sim.Metrics.local_fraction m) ];
          [
            "not cachable (cache full of busy streams)";
            Common.fmt_pct
              (float_of_int m.Vod_sim.Metrics.not_cachable
              /. float_of_int (max 1 m.Vod_sim.Metrics.requests));
          ];
          [ "cache hits"; Common.fmt_pct (float_of_int m.Vod_sim.Metrics.cache_hits /. float_of_int (max 1 m.Vod_sim.Metrics.requests)) ];
        ];
      Common.note "paper: ~60%% of requests served remotely; ~20%% not cachable."
  | _ -> ());
  results
