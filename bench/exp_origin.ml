(* Fig. 10 + Table II — MIP vs LRU caching with regional origin servers at
   2x and 6x aggregate disk (Sec. VII-B, comparison to Sharma et al.). The
   origin fleet gets four regional origins each holding the full library,
   storage not counted — the paper's deliberate handicap in favour of
   caching. *)

let run (sc : Vod_core.Scenario.t) =
  Common.section "Fig. 10 / Table II — MIP vs LRU caching with origin servers";
  let one_setting mult =
    let link_mbps = Common.calibrate_link_capacity sc ~disk_multiple:mult in
    let cfg = Common.pipeline_config ~disk_multiple:mult ~link_capacity_mbps:link_mbps sc in
    (* The two fleets of one setting play out concurrently. *)
    match
      Common.parallel_runs
        [
          (fun () -> Vod_core.Pipeline.run cfg (Vod_core.Pipeline.Mip Common.mip_config));
          (fun () -> Vod_core.Pipeline.run cfg (Vod_core.Pipeline.Origin_lru 4));
        ]
    with
    | [ mip; lru ] -> (mult, mip, lru)
    | _ -> invalid_arg "exp_origin: parallel_runs arity"
  in
  let settings = List.map one_setting [ 2.0; 6.0 ] in
  let row name f =
    name
    :: List.concat_map
         (fun (_, mip, lru) ->
           [ f (mip : Vod_core.Pipeline.result); f (lru : Vod_core.Pipeline.result) ])
         settings
  in
  Vod_util.Table.print
    ~header:[ ""; "2x MIP"; "2x LRU+origin"; "6x MIP"; "6x LRU+origin" ]
    [
      row "peak link B/W (Gb/s)" (fun r ->
          Common.fmt_gbps (Vod_sim.Metrics.max_link_mbps r.Vod_core.Pipeline.metrics));
      row "max aggregate B/W (Gb/s)" (fun r ->
          Common.fmt_gbps (Vod_sim.Metrics.max_aggregate_mbps r.Vod_core.Pipeline.metrics));
      row "cache hit rate" (fun r ->
          Common.fmt_pct (Vod_sim.Metrics.hit_rate r.Vod_core.Pipeline.metrics));
      row "total transfer (GB x hop)" (fun r ->
          Printf.sprintf "%.0f" r.Vod_core.Pipeline.metrics.Vod_sim.Metrics.total_gb_hops);
    ];
  Common.note
    "paper (Table II): peak link B/W — MIP 4.5 vs LRU 17.8 (2x), 1.9 vs 6.6 (6x); hit rate 68%% vs 62%% (2x), 95%% vs 86%% (6x)."
