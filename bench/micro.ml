(* Bechamel micro-benchmarks of the computational kernels behind each
   paper exhibit: the per-video UFL block heuristics (the inner loop of
   every EPF pass), the dual-ascent bound, one full EPF solve at toy
   scale, the simplex reference, and the simulator's serve path. *)

open Bechamel
open Toolkit

let block_fixture () =
  let graph = Vod_topology.Topologies.ring_plus_chords ~name:"m" ~n:55 ~target_edges:76 ~seed:1 in
  let sc =
    Vod_core.Scenario.make ~days:7 ~requests_per_video_per_day:6.0 ~seed:9 ~graph
      ~n_videos:200 ()
  in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  let inst =
    Vod_placement.Instance.create ~graph ~catalog:sc.Vod_core.Scenario.catalog ~demand
      ~disk_gb:disk
      ~link_capacity_mbps:(Vod_placement.Instance.uniform_links graph 1000.0)
      ()
  in
  let blocks = Vod_placement.Blocks.build_blocks inst in
  (* The busiest block: the representative per-pass workload. *)
  let busiest =
    Array.fold_left
      (fun (best : Vod_placement.Blocks.block) b ->
        if Array.length b.Vod_placement.Blocks.clients
           > Array.length best.Vod_placement.Blocks.clients
        then b
        else best)
      blocks.(0) blocks
  in
  let prices = Array.init (Vod_placement.Instance.n_rows inst) (fun i -> 0.01 *. float_of_int (1 + (i mod 7))) in
  (inst, busiest, prices, sc)

let tests () =
  let inst, block, prices, sc = block_fixture () in
  let ufl = Vod_placement.Blocks.ufl_of_block inst block ~obj_price:1.0 ~row_price:prices in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    (* Table III's inner loop: one block optimization. *)
    mk "table3/ufl_greedy_55fac" (fun () ->
        ignore (Vod_facility.Ufl.greedy ufl));
    mk "table3/ufl_local_search_55fac" (fun () ->
        ignore (Vod_facility.Ufl.local_search ufl));
    (* The lower-bound pass kernel. *)
    mk "table3/ufl_dual_ascent_55fac" (fun () ->
        ignore (Vod_facility.Ufl.dual_ascent ufl));
    (* Figs. 5/6/10, Tables II/V/VI: the simulator's serve path. *)
    mk "fig5/fleet_serve" (fun () ->
        let fleet =
          Vod_cache.Fleet.random_single ~paths:sc.Vod_core.Scenario.paths
            ~catalog:sc.Vod_core.Scenario.catalog
            ~disk_gb:(Array.make 55 10.0) ~policy:Vod_cache.Cache.Lru ~seed:3
        in
        for v = 0 to 49 do
          ignore (Vod_cache.Fleet.serve fleet ~video:v ~vho:(v mod 55) ~now:(float_of_int v))
        done);
    (* Figs. 2/3: trace analytics kernels. *)
    mk "fig2/working_set" (fun () ->
        ignore
          (Vod_workload.Stats.working_set sc.Vod_core.Scenario.trace
             sc.Vod_core.Scenario.catalog ~vho:0 ~t0:0.0 ~t1:3600.0));
    mk "fig3/cosine_similarity" (fun () ->
        ignore
          (Vod_workload.Stats.peak_interval_similarity sc.Vod_core.Scenario.trace
             ~window_s:86_400.0));
  ]

let run () =
  Common.section "Bechamel micro-benchmarks (kernel costs behind the experiments)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"vodopt" ~fmt:"%s %s" (tests ())) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | Some [] | None -> "?"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Vod_util.Table.print ~align:Vod_util.Table.Left
    ~header:[ "kernel"; "time per run (ns)" ]
    (List.sort (List.compare String.compare) !rows)
