(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. VII). Run all experiments:

     dune exec bench/main.exe

   or a subset:

     dune exec bench/main.exe -- fig5 table3 ...

   Experiment ids: fig2 fig3 fig4 fig5 (covers figs 5-9) fig10 (+table2)
   fig11 fig12 fig13 table3 (alias: scaling) table4 table5 table6 micro.
   Scale via VOD_SCALE=quick|default|full|huge; the huge tier adds a
   million-video end-to-end run to the scaling exhibit.

   --checkpoint DIR  writes each exhibit's console section and metrics
   JSON as it completes and skips already-completed exhibits on the
   next run, so a killed default/full-scale run resumes instead of
   starting over (see EXPERIMENTS.md, "Regenerating the numbers").
   --metrics PATH    exports the run's Obs registry as sorted JSON. *)

let available =
  [
    ("fig2", "working-set sizes (also fig3, fig4 via 'trace')");
    ("fig5", "MIP vs caching baselines: figs 5, 6, 7, 8, 9");
    ("fig10", "MIP vs origin+LRU: fig 10 and Table II");
    ("fig11", "feasibility region");
    ("fig12", "complementary cache sweep");
    ("fig13", "link capacity vs library size");
    ("table3", "solver scaling vs simplex reference (alias: scaling; huge tier adds the 1M-video end-to-end run)");
    ("table4", "topology vs link capacity");
    ("table5", "peak window size");
    ("table6", "update frequency / estimation accuracy");
    ("ablation", "solver design-choice ablations (pass order, warm start)");
    ("decomp", "solver backends: Benders/DW master vs EPF convergence race");
    ("failure", "fault injection: placement vs caching fleets under outages");
    ("daemon", "online re-placement daemon vs weekly/daily batch updates");
    ("micro", "bechamel kernel micro-benchmarks");
  ]

(* Extract the harness flags from the argument list; returns the
   remaining (experiment-id) arguments. --jobs sets the process-wide
   pool default (0 keeps the number-of-cores default). *)
let metrics_path = ref None
let checkpoint_dir = ref None

(* Overrides for the 'failure' exhibit: replay a custom CSV fault
   schedule and/or force the playout link budget. *)
let faults_file = ref None
let link_capacity = ref None

let parse_flags args =
  let starts_with prefix a =
    let n = String.length prefix in
    String.length a > n && String.sub a 0 n = prefix
  in
  let tail prefix a =
    let n = String.length prefix in
    String.sub a n (String.length a - n)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest ->
        Vod_util.Pool.set_default_jobs (int_of_string n);
        go acc rest
    | a :: rest when starts_with "--jobs=" a ->
        Vod_util.Pool.set_default_jobs (int_of_string (tail "--jobs=" a));
        go acc rest
    | "--metrics" :: p :: rest ->
        metrics_path := Some p;
        go acc rest
    | a :: rest when starts_with "--metrics=" a ->
        metrics_path := Some (tail "--metrics=" a);
        go acc rest
    | "--checkpoint" :: d :: rest ->
        checkpoint_dir := Some d;
        go acc rest
    | a :: rest when starts_with "--checkpoint=" a ->
        checkpoint_dir := Some (tail "--checkpoint=" a);
        go acc rest
    | "--faults" :: p :: rest ->
        faults_file := Some p;
        go acc rest
    | a :: rest when starts_with "--faults=" a ->
        faults_file := Some (tail "--faults=" a);
        go acc rest
    | "--link-capacity" :: c :: rest ->
        link_capacity := Some (float_of_string c);
        go acc rest
    | a :: rest when starts_with "--link-capacity=" a ->
        link_capacity := Some (float_of_string (tail "--link-capacity=" a));
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  let args = parse_flags (List.tl (Array.to_list Sys.argv)) in
  let wants name =
    match args with
    | [] -> true
    | _ ->
        List.exists
          (fun a ->
            a = name
            || (a = "trace" && List.mem name [ "fig2"; "fig3"; "fig4" ])
            || (a = "scaling" && name = "table3"))
          args
  in
  if List.mem "--help" args || List.mem "-h" args then begin
    print_endline
      "usage: main.exe [--jobs N] [--metrics PATH] [--checkpoint DIR] [--faults CSV] [--link-capacity MBPS] [experiment ...]   (default: all)";
    print_endline
      "  --jobs N          worker domains for parallel phases (0 = number of cores)";
    print_endline
      "  --metrics PATH    write the run's metrics registry as sorted JSON ('-' = stdout)";
    print_endline
      "  --checkpoint DIR  checkpoint each exhibit into DIR and skip completed ones on resume";
    print_endline
      "  --faults CSV      'failure' exhibit: replay this fault schedule instead of the canned ones";
    print_endline
      "  --link-capacity M 'failure' exhibit: playout link budget in Mb/s (default: calibrated)";
    print_endline
      "  VOD_SCALE=quick|default|full|huge  scale tier (wall-clock/RSS per tier: EXPERIMENTS.md)";
    List.iter (fun (n, d) -> Printf.printf "  %-8s %s\n" n d) available;
    exit 0
  end;
  Common.note "jobs=%d | VOD_SCALE=%s | library %d videos | %d days | %.0f req/video/day"
    (Vod_util.Pool.default_jobs ())
    Common.scale_name Common.sim_videos Common.days
    Common.requests_per_video_per_day;
  let scenario = lazy (Common.backbone_scenario ()) in
  let run_all () =
    let ran = ref 0 in
    let run_if name f =
      if wants name then begin
        incr ran;
        (* Sample the RSS high-water mark at every exhibit boundary
           (last write wins, so the final value is the run's true peak);
           sampled inside [f] so checkpointed exhibit registries carry
           their own peak too. *)
        let f () =
          Fun.protect ~finally:Vod_obs.Memstat.sample_peak_rss f
        in
        match !checkpoint_dir with
        | None ->
            (* Same phase key the checkpointed path records, so
               --metrics reports per-exhibit timing either way. *)
            let (), dt =
              Common.timed (fun () -> Vod_obs.Obs.phase ("bench/" ^ name) f)
            in
            Common.note "[%s done in %.1fs]" name dt
        | Some dir -> (
            let outcome, dt =
              Common.timed (fun () -> Vod_obs.Checkpoint.run ~dir ~name f)
            in
            match outcome with
            | Vod_obs.Checkpoint.Ran ->
                Common.note "[%s done in %.1fs; checkpointed to %s]" name dt dir
            | Vod_obs.Checkpoint.Restored ->
                Common.note "[%s restored from %s]" name dir)
      end
    in
    run_if "fig2" (fun () -> Exp_trace.run (Lazy.force scenario));
    run_if "fig5" (fun () -> ignore (Exp_compare.run (Lazy.force scenario)));
    run_if "fig10" (fun () -> Exp_origin.run (Lazy.force scenario));
    run_if "fig11" (fun () -> Exp_feasibility.fig11_region ());
    run_if "fig12" (fun () -> Exp_cache_sweep.run (Lazy.force scenario));
    run_if "fig13" (fun () -> Exp_feasibility.fig13_library_growth ());
    run_if "table3" (fun () -> Exp_scaling.run ());
    run_if "table4" (fun () -> Exp_feasibility.table4_topology ());
    run_if "table5" (fun () -> Exp_window.run ());
    run_if "table6" (fun () -> Exp_update.run (Lazy.force scenario));
    run_if "ablation" (fun () -> Exp_ablation.run ());
    run_if "decomp" (fun () -> Exp_decomp.run ());
    run_if "failure" (fun () ->
        Exp_failure.run ?faults_file:!faults_file ?link_capacity:!link_capacity ());
    run_if "daemon" (fun () -> Exp_daemon.run ());
    run_if "micro" (fun () -> Micro.run ());
    !ran
  in
  let total, dt =
    Common.timed (fun () ->
        match !metrics_path with
        | None -> run_all ()
        | Some path ->
            let reg = Vod_obs.Obs.create () in
            let total = Vod_obs.Obs.with_run reg run_all in
            Vod_obs.Obs.write_json reg path;
            total)
  in
  Common.note "\n%d experiment group(s) completed in %.1fs." total dt
