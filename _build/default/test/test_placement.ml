(* Tests for the placement layer: instance construction, block assembly,
   the end-to-end solve on tiny instances cross-checked against the full
   LP solved by simplex, rounding integrality, feasibility probing and
   migration accounting. *)

module I = Vod_placement.Instance
module B = Vod_placement.Blocks
module Sol = Vod_placement.Solution
module Solve = Vod_placement.Solve
module F = Vod_placement.Feasibility
module G = Vod_topology.Graph

(* A tiny deterministic world: 4 VHOs on a ring, 8 videos, 7 days. *)
let tiny_graph () =
  G.create ~name:"ring4" ~n:4
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
    ~populations:[| 4.0; 3.0; 2.0; 1.0 |]

let tiny_world ?(n_videos = 8) ?(requests = 600.0) () =
  let graph = tiny_graph () in
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:n_videos ~days:7 ~seed:11)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:graph.G.populations ~mean_daily_requests:requests ~seed:12)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7 ~n_windows:2
      ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  (graph, catalog, demand)

let tiny_instance ?(disk_mult = 2.0) ?(link = 200.0) () =
  let graph, catalog, demand = tiny_world () in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  I.create ~graph ~catalog ~demand
    ~disk_gb:(I.uniform_disk ~total_gb:(disk_mult *. total) 4)
    ~link_capacity_mbps:(I.uniform_links graph link)
    ()

let row_layout () =
  let inst = tiny_instance () in
  Alcotest.(check int) "vhos" 4 (I.n_vhos inst);
  Alcotest.(check int) "links" 8 (I.n_links inst);
  Alcotest.(check int) "windows" 2 (I.n_windows inst);
  Alcotest.(check int) "rows" (4 + (2 * 8)) (I.n_rows inst);
  Alcotest.(check int) "disk row" 2 (I.disk_row inst 2);
  Alcotest.(check int) "link row" (4 + 8 + 3) (I.link_row inst ~window:1 ~link:3);
  let caps = I.capacities inst in
  Alcotest.(check int) "caps arity" (I.n_rows inst) (Array.length caps);
  Array.iter (fun c -> Alcotest.(check bool) "caps positive" true (c > 0.0)) caps

let cost_affine_in_hops () =
  let inst = tiny_instance () in
  Alcotest.(check (float 1e-9)) "local cost = beta" inst.I.beta_cost
    (I.cost inst ~src:0 ~dst:0);
  Alcotest.(check (float 1e-9)) "one hop"
    (inst.I.alpha_cost +. inst.I.beta_cost)
    (I.cost inst ~src:0 ~dst:1)

let instance_validation () =
  let graph, catalog, demand = tiny_world () in
  Alcotest.check_raises "bad disk arity" (Invalid_argument "Instance.create: disk_gb arity")
    (fun () ->
      ignore
        (I.create ~graph ~catalog ~demand ~disk_gb:[| 1.0 |]
           ~link_capacity_mbps:(I.uniform_links graph 100.0)
           ()))

let blocks_cover_demand () =
  let inst = tiny_instance () in
  let blocks = B.build_blocks inst in
  Alcotest.(check int) "one block per video" 8 (Array.length blocks);
  Array.iteri
    (fun video (b : B.block) ->
      Alcotest.(check int) "video id" video b.B.video;
      (* Every demand pair appears among the block's clients. *)
      Array.iter
        (fun (vho, a) ->
          let c = Array.to_list b.B.clients |> List.find (fun c -> c.B.vho = vho) in
          Alcotest.(check (float 1e-9)) "a matches" a c.B.a)
        inst.I.demand.Vod_workload.Demand.a.(video))
    blocks

let block_point_consistency () =
  let inst = tiny_instance () in
  let blocks = B.build_blocks inst in
  let zero = Array.make (I.n_rows inst) 0.0 in
  Array.iter
    (fun (b : B.block) ->
      let ufl = B.ufl_of_block inst b ~obj_price:1.0 ~row_price:zero in
      let sol = Vod_facility.Ufl.greedy ufl in
      let pt = B.point_of_solution inst b sol in
      (* Disk usage of the point = copies * size on the right rows. *)
      let n_open =
        Array.fold_left (fun acc o -> if o then acc + 1 else acc) 0
          sol.Vod_facility.Ufl.open_set
      in
      let disk_usage = ref 0.0 in
      Vod_epf.Sparse.iter
        (fun row v -> if row < 4 then disk_usage := !disk_usage +. v)
        pt.Vod_epf.Engine.usage;
      Alcotest.(check (float 1e-9)) "disk usage"
        (float_of_int n_open *. b.B.size_gb)
        !disk_usage;
      (* With zero prices the point's priced objective equals its obj. *)
      Alcotest.(check bool) "objective nonnegative" true (pt.Vod_epf.Engine.obj >= 0.0))
    blocks

let warm_prices_shape () =
  let inst = tiny_instance () in
  let prices = B.warm_disk_prices inst in
  Alcotest.(check int) "one per vho" 4 (Array.length prices);
  Array.iter (fun p -> Alcotest.(check bool) "nonnegative" true (p >= 0.0)) prices

(* The central cross-check: EPF lower bound <= simplex LP optimum, and the
   rounded MIP objective is close to the LP optimum. *)
let solve_vs_simplex () =
  let inst = tiny_instance ~disk_mult:2.0 ~link:200.0 () in
  let lp_opt =
    match Vod_placement.Lp_check.solve_reference inst with
    | Vod_lp.Simplex.Optimal { objective; _ } -> objective
    | Vod_lp.Simplex.Infeasible -> Alcotest.fail "reference LP infeasible"
    | Vod_lp.Simplex.Unbounded -> Alcotest.fail "reference LP unbounded"
  in
  let params = { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 120 } in
  let report = Solve.solve ~params inst in
  let sol = report.Solve.solution in
  Alcotest.(check bool)
    (Printf.sprintf "LB valid (%.2f <= %.2f)" sol.Sol.lower_bound lp_opt)
    true
    (sol.Sol.lower_bound <= lp_opt +. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "fractional obj sane (%.2f vs LP %.2f)" report.Solve.lp_objective lp_opt)
    true
    (report.Solve.lp_objective >= lp_opt *. (1.0 -. report.Solve.lp_violation -. 0.05));
  Alcotest.(check bool)
    (Printf.sprintf "MIP obj >= LP opt - slack (%.2f vs %.2f)" sol.Sol.objective lp_opt)
    true
    (sol.Sol.objective >= lp_opt *. 0.90);
  Alcotest.(check bool) "violation moderate" true (sol.Sol.max_violation <= 0.6)

let solution_invariants () =
  let inst = tiny_instance () in
  let report = Solve.solve inst in
  let sol = report.Solve.solution in
  Alcotest.(check int) "all videos placed" 8 sol.Sol.n_videos;
  for video = 0 to 7 do
    Alcotest.(check bool) "at least one copy" true (Sol.copies sol video >= 1);
    (* Server resolves for every vho, and stores the video. *)
    for vho = 0 to 3 do
      let s = Sol.server sol inst.I.paths ~video ~vho in
      Alcotest.(check bool) "server stores video" true (Sol.stores sol ~video ~vho:s)
    done
  done;
  (* Disk accounting matches stored sets. *)
  let used = Sol.disk_used sol inst.I.catalog in
  let total_stored =
    Array.fold_left (fun acc vhos -> acc + Array.length vhos) 0 sol.Sol.stored
  in
  Alcotest.(check bool) "some replication" true (total_stored >= 8);
  Array.iteri
    (fun i u ->
      Alcotest.(check bool) "disk within violated cap" true
        (u <= inst.I.disk_gb.(i) *. (1.0 +. sol.Sol.max_violation +. 1e-6)))
    used

let migration_accounting () =
  let inst = tiny_instance () in
  let r1 = Solve.solve ~params:{ Vod_epf.Engine.default_params with Vod_epf.Engine.seed = 1 } inst in
  let r2 = Solve.solve ~params:{ Vod_epf.Engine.default_params with Vod_epf.Engine.seed = 99 } inst in
  let s1 = r1.Solve.solution and s2 = r2.Solve.solution in
  let t_self, gb_self = Sol.migration ~old_sol:s1 ~new_sol:s1 inst.I.catalog in
  Alcotest.(check int) "self migration empty" 0 t_self;
  Alcotest.(check (float 1e-9)) "self migration zero GB" 0.0 gb_self;
  let t12, gb12 = Sol.migration ~old_sol:s1 ~new_sol:s2 inst.I.catalog in
  Alcotest.(check bool) "nonnegative" true (t12 >= 0 && gb12 >= 0.0)

let feasibility_monotone () =
  let graph, catalog, demand = tiny_world () in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let probe mult link =
    let inst =
      I.create ~graph ~catalog ~demand
        ~disk_gb:(I.uniform_disk ~total_gb:(mult *. total) 4)
        ~link_capacity_mbps:(I.uniform_links graph link)
        ()
    in
    F.feasible inst
  in
  (* Plenty of disk and bandwidth: feasible. *)
  Alcotest.(check bool) "ample resources feasible" true (probe 4.0 2000.0);
  (* Disk below one copy of the library cannot be feasible. *)
  Alcotest.(check bool) "sub-library disk infeasible" false (probe 0.5 2000.0)

let binary_search_behaviour () =
  let calls = ref [] in
  let feasible_at x =
    calls := x :: !calls;
    x >= 3.0
  in
  (match F.binary_search_min ~lo:1.0 ~hi:8.0 ~tol:0.02 ~feasible_at with
  | Some v -> Alcotest.(check bool) "finds threshold" true (Float.abs (v -. 3.0) < 0.25)
  | None -> Alcotest.fail "expected feasible hi");
  (match F.binary_search_min ~lo:1.0 ~hi:2.0 ~tol:0.02 ~feasible_at:(fun _ -> false) with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None");
  match F.binary_search_min ~lo:5.0 ~hi:8.0 ~tol:0.02 ~feasible_at with
  | Some v -> Alcotest.(check (float 1e-9)) "lo already feasible" 5.0 v
  | None -> Alcotest.fail "expected feasible lo"

(* End-to-end cross-check over random instances: the engine's Lagrangian
   bound must never exceed the simplex LP optimum, and the fractional
   objective must not beat it either (modulo the allowed epsilon
   violation). This is the strongest soundness property in the suite. *)
let prop_bound_vs_simplex =
  QCheck.Test.make ~name:"engine bound below simplex LP optimum on random instances"
    ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let graph = tiny_graph () in
      let catalog =
        Vod_workload.Catalog.generate
          (Vod_workload.Catalog.default_params ~n:6 ~days:7 ~seed)
      in
      let trace =
        Vod_workload.Tracegen.generate
          (Vod_workload.Tracegen.default_params ~catalog
             ~populations:graph.G.populations ~mean_daily_requests:400.0
             ~seed:(seed + 1))
      in
      let demand =
        Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7
          ~n_windows:2 ~window_s:3600.0 trace.Vod_workload.Trace.requests
      in
      let total = Vod_workload.Catalog.total_size_gb catalog in
      let inst =
        I.create ~graph ~catalog ~demand
          ~disk_gb:(I.uniform_disk ~total_gb:(2.5 *. total) 4)
          ~link_capacity_mbps:(I.uniform_links graph 400.0)
          ()
      in
      match Vod_placement.Lp_check.solve_reference inst with
      | Vod_lp.Simplex.Optimal { objective = lp_opt; _ } ->
          let params =
            { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 40; seed }
          in
          let report = Solve.solve ~params inst in
          let sol = report.Solve.solution in
          sol.Sol.lower_bound <= lp_opt +. 1e-6
          && report.Solve.lp_objective
             >= lp_opt *. (1.0 -. report.Solve.lp_violation -. 0.05)
      | Vod_lp.Simplex.Infeasible | Vod_lp.Simplex.Unbounded -> false)

let lp_check_structure () =
  let inst = tiny_instance () in
  let lp = Vod_placement.Lp_check.build inst in
  Alcotest.(check int) "variable count" (8 * (4 + 16)) lp.Vod_lp.Simplex.n_vars;
  (* Variable indexing round-trips. *)
  Alcotest.(check int) "y index"
    (Vod_placement.Lp_check.y_var ~n:4 ~video:0 3)
    3;
  Alcotest.(check int) "x index"
    (Vod_placement.Lp_check.x_var ~n:4 ~video:1 ~server:2 ~client:3)
    ((1 * 20) + 4 + (2 * 4) + 3)

(* Proposition 5.1: the optimal LP *value* decomposes as
   alpha * T + beta * C where T (hop-weighted transfer) and C (constant
   demand mass) are invariant to alpha, beta — so the optimizer set is
   unchanged. Verified with two exact LP solves at different (alpha,
   beta). *)
let proposition_5_1 () =
  let graph, catalog, demand = tiny_world ~n_videos:6 () in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let solve_lp ~alpha_cost ~beta_cost =
    let inst =
      I.create ~alpha_cost ~beta_cost ~graph ~catalog ~demand
        ~disk_gb:(I.uniform_disk ~total_gb:(2.0 *. total) 4)
        ~link_capacity_mbps:(I.uniform_links graph 300.0)
        ()
    in
    match Vod_placement.Lp_check.solve_reference inst with
    | Vod_lp.Simplex.Optimal { objective; _ } -> objective
    | _ -> Alcotest.fail "LP not optimal"
  in
  (* Constant term C = sum over demand of size * count. *)
  let c_mass = ref 0.0 in
  Array.iteri
    (fun video pairs ->
      let s = Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video) in
      Array.iter (fun (_, a) -> c_mass := !c_mass +. (s *. a)) pairs)
    demand.Vod_workload.Demand.a;
  let o11 = solve_lp ~alpha_cost:1.0 ~beta_cost:1.0 in
  let o25 = solve_lp ~alpha_cost:2.0 ~beta_cost:5.0 in
  let t_from_11 = o11 -. !c_mass in
  let predicted_25 = (2.0 *. t_from_11) +. (5.0 *. !c_mass) in
  Alcotest.(check bool)
    (Printf.sprintf "objective transforms affinely (%.2f vs %.2f)" predicted_25 o25)
    true
    (Float.abs (predicted_25 -. o25) <= 1e-4 *. Float.max 1.0 o25)

(* The placement-transfer term (Eq. 11): a positive weight must not
   increase the number of copies placed and adds origin-transfer cost. *)
let placement_weight_discourages_copies () =
  let graph, catalog, demand = tiny_world () in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let solve ~placement_weight =
    let inst =
      I.create ~placement_weight ~graph ~catalog ~demand
        ~disk_gb:(I.uniform_disk ~total_gb:(3.0 *. total) 4)
        ~link_capacity_mbps:(I.uniform_links graph 500.0)
        ()
    in
    let report = Solve.solve inst in
    let sol = report.Solve.solution in
    Array.fold_left (fun acc vhos -> acc + Array.length vhos) 0 sol.Sol.stored
  in
  let copies_free = solve ~placement_weight:0.0 in
  let copies_heavy = solve ~placement_weight:50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "heavy placement cost -> fewer copies (%d vs %d)" copies_heavy
       copies_free)
    true
    (copies_heavy <= copies_free)

let fixed_order_also_solves () =
  let inst = tiny_instance () in
  let params =
    { Vod_epf.Engine.default_params with Vod_epf.Engine.shuffle = false; max_passes = 80 }
  in
  let report = Solve.solve ~params inst in
  Alcotest.(check bool) "still produces a placement" true
    (report.Solve.solution.Sol.n_videos = 8)

let cold_start_also_solves () =
  let inst = tiny_instance () in
  let _, oracles = B.oracles ~warm_start:false inst in
  let outcome =
    Vod_epf.Engine.solve Vod_epf.Engine.default_params
      ~capacities:(I.capacities inst) ~oracles
  in
  Alcotest.(check bool) "epsilon-ish feasible" true
    (outcome.Vod_epf.Engine.max_violation < 0.5)

let suite =
  [
    Alcotest.test_case "row layout" `Quick row_layout;
    Alcotest.test_case "proposition 5.1" `Slow proposition_5_1;
    Alcotest.test_case "placement weight" `Slow placement_weight_discourages_copies;
    Alcotest.test_case "fixed order solves" `Quick fixed_order_also_solves;
    Alcotest.test_case "cold start solves" `Quick cold_start_also_solves;
    Alcotest.test_case "cost affine in hops" `Quick cost_affine_in_hops;
    Alcotest.test_case "instance validation" `Quick instance_validation;
    Alcotest.test_case "blocks cover demand" `Quick blocks_cover_demand;
    Alcotest.test_case "block point consistency" `Quick block_point_consistency;
    Alcotest.test_case "warm prices shape" `Quick warm_prices_shape;
    Alcotest.test_case "solve vs simplex" `Slow solve_vs_simplex;
    Alcotest.test_case "solution invariants" `Quick solution_invariants;
    Alcotest.test_case "migration accounting" `Quick migration_accounting;
    Alcotest.test_case "feasibility monotone" `Slow feasibility_monotone;
    Alcotest.test_case "binary search" `Quick binary_search_behaviour;
    Alcotest.test_case "lp_check structure" `Quick lp_check_structure;
    QCheck_alcotest.to_alcotest prop_bound_vs_simplex;
  ]
