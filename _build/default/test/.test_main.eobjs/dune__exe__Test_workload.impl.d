test/test_workload.ml: Alcotest Array Float Hashtbl List Option Printf Vod_topology Vod_util Vod_workload
