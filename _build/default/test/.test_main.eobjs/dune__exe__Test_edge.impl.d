test/test_edge.ml: Alcotest Array Vod_cache Vod_placement Vod_sim Vod_topology Vod_workload
