test/test_facility.ml: Alcotest Array Float List QCheck QCheck_alcotest Vod_facility Vod_util
