test/test_placement.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Vod_epf Vod_facility Vod_lp Vod_placement Vod_topology Vod_workload
