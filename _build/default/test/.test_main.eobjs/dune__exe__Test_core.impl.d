test/test_core.ml: Alcotest Array Float List Option Printf Vod_cache Vod_core Vod_epf Vod_sim Vod_topology Vod_workload
