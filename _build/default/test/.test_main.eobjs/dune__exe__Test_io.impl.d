test/test_io.ml: Alcotest Array Filename Float Sys Vod_placement Vod_topology Vod_workload
