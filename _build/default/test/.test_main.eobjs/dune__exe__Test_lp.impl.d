test/test_lp.ml: Alcotest Array Float QCheck QCheck_alcotest Vod_lp
