test/test_refine.ml: Alcotest Array List Vod_core Vod_epf Vod_topology
