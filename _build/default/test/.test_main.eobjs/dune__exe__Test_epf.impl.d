test/test_epf.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Vod_epf Vod_lp Vod_util
