test/test_sim.ml: Alcotest Array Vod_cache Vod_sim Vod_topology Vod_workload
