test/test_props.ml: Array Float List QCheck QCheck_alcotest Vod_epf Vod_placement Vod_topology Vod_util Vod_workload
