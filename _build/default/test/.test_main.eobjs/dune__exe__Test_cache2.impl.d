test/test_cache2.ml: Alcotest Array List Vod_cache Vod_topology Vod_workload
