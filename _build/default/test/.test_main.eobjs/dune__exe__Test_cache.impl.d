test/test_cache.ml: Alcotest Array List QCheck QCheck_alcotest Vod_cache Vod_placement Vod_topology Vod_workload
