test/test_util.ml: Alcotest Array Float Gen Hashtbl List Printf QCheck QCheck_alcotest String Vod_util
