test/test_chunking.ml: Alcotest Array Float Printf Vod_cache Vod_placement Vod_topology Vod_workload
