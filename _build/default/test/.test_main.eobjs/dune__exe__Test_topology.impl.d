test/test_topology.ml: Alcotest Array Float Vod_topology
