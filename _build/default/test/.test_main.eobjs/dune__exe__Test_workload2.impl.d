test/test_workload2.ml: Alcotest Array Float Hashtbl List Printf Vod_topology Vod_util Vod_workload
