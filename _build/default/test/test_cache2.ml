(* Second round of cache/fleet tests: eviction edge cases, busy-stream
   extension, origin routing preferences, pinned accounting. *)

module C = Vod_cache.Cache
module FL = Vod_cache.Fleet

let touch_extends_lock () =
  let c = C.create ~policy:C.Lru ~capacity_gb:1.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:10.0);
  (* A later hit extends the lock. *)
  ignore (C.touch c 1 ~busy_until:100.0);
  let inserted, _ = C.insert c 2 ~size_gb:1.0 ~now:50.0 ~busy_until:60.0 in
  Alcotest.(check bool) "still locked at t=50" false inserted;
  (* A hit with an earlier end must not shorten the lock. *)
  ignore (C.touch c 1 ~busy_until:20.0);
  let inserted, _ = C.insert c 2 ~size_gb:1.0 ~now:60.0 ~busy_until:70.0 in
  Alcotest.(check bool) "lock not shortened" false inserted

let multi_eviction_for_large_insert () =
  let c = C.create ~policy:C.Lru ~capacity_gb:3.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:0.0);
  ignore (C.insert c 2 ~size_gb:1.0 ~now:1.0 ~busy_until:1.0);
  ignore (C.insert c 3 ~size_gb:1.0 ~now:2.0 ~busy_until:2.0);
  let inserted, evicted = C.insert c 4 ~size_gb:2.5 ~now:10.0 ~busy_until:10.0 in
  Alcotest.(check bool) "inserted" true inserted;
  Alcotest.(check int) "evicted three" 3 (List.length evicted);
  Alcotest.(check (float 1e-9)) "used" 2.5 (C.used_gb c)

let lfu_frequency_reset_on_reinsert () =
  let c = C.create ~policy:C.Lfu ~capacity_gb:2.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:0.0);
  ignore (C.touch c 1 ~busy_until:0.0);
  ignore (C.touch c 1 ~busy_until:0.0);
  ignore (C.insert c 2 ~size_gb:1.0 ~now:1.0 ~busy_until:1.0);
  (* Evict 2 (freq 1), reinsert it: frequency must restart at 1, so video
     1 (freq 3) survives the next pressure round. *)
  let _, ev = C.insert c 3 ~size_gb:1.0 ~now:2.0 ~busy_until:2.0 in
  Alcotest.(check (list int)) "evicts low-frequency" [ 2 ] ev;
  let _, ev = C.insert c 2 ~size_gb:1.0 ~now:3.0 ~busy_until:3.0 in
  Alcotest.(check (list int)) "evicts 3 (fresh freq), not 1" [ 3 ] ev

let world () =
  let g =
    Vod_topology.Graph.create ~name:"line5" ~n:5
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4) ]
      ~populations:[| 5.0; 1.0; 1.0; 1.0; 1.0 |]
  in
  let paths = Vod_topology.Paths.compute g in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:10 ~days:7 ~seed:4)
  in
  (g, paths, catalog)

let origin_prefers_closer_cached_copy () =
  let g, paths, catalog = world () in
  let fleet =
    FL.origin_regions ~regions:1 ~graph:g ~paths ~catalog
      ~disk_gb:[| 30.0; 30.0; 30.0; 30.0; 30.0 |]
  in
  (* Single region: the origin sits at the largest metro (node 0). A
     request at node 4 (4 hops from origin) fetches from the origin and
     caches locally; a subsequent request at node 3 should prefer node 4's
     cached copy (1 hop) over the origin (3 hops). *)
  let o1 = FL.serve fleet ~video:5 ~vho:4 ~now:0.0 in
  Alcotest.(check int) "first fetch from origin" 0 o1.FL.server;
  Alcotest.(check bool) "cached at 4" true o1.FL.inserted;
  let o2 = FL.serve fleet ~video:5 ~vho:3 ~now:10_000.0 in
  Alcotest.(check int) "second fetch from nearer cache" 4 o2.FL.server

let pinned_gb_matches_catalog () =
  let _, paths, catalog = world () in
  let fleet =
    FL.random_single ~paths ~catalog ~disk_gb:[| 30.0; 30.0; 30.0; 30.0; 30.0 |]
      ~policy:C.Lru ~seed:2
  in
  let total_pinned = Array.fold_left ( +. ) 0.0 (FL.pinned_gb fleet) in
  Alcotest.(check (float 1e-6)) "one copy of each video"
    (Vod_workload.Catalog.total_size_gb catalog)
    total_pinned

let serve_remote_locks_remote_copy () =
  let g, paths, catalog = world () in
  (* Caches sized for exactly one clip, so a second admission requires
     evicting the first. *)
  let fleet =
    FL.origin_regions ~regions:1 ~graph:g ~paths ~catalog
      ~disk_gb:[| 0.1; 0.1; 0.1; 0.1; 0.1 |]
  in
  let clip =
    Array.to_list catalog.Vod_workload.Catalog.videos
    |> List.find (fun v -> Vod_workload.Video.size_gb v <= 0.1)
  in
  let id = clip.Vod_workload.Video.id in
  let o1 = FL.serve fleet ~video:id ~vho:4 ~now:0.0 in
  Alcotest.(check bool) "cached" true o1.FL.inserted;
  (* Node 3 streams from node 4's cache: that copy is now busy, so node
     4's own next insert cannot evict it. *)
  let o2 = FL.serve fleet ~video:id ~vho:3 ~now:1.0 in
  Alcotest.(check int) "served from 4" 4 o2.FL.server;
  let other =
    Array.to_list catalog.Vod_workload.Catalog.videos
    |> List.find (fun v ->
           Vod_workload.Video.size_gb v <= 0.1 && v.Vod_workload.Video.id <> id)
  in
  let o3 = FL.serve fleet ~video:other.Vod_workload.Video.id ~vho:4 ~now:2.0 in
  Alcotest.(check bool) "not cachable while busy" true o3.FL.not_cachable

let suite =
  [
    Alcotest.test_case "touch extends lock" `Quick touch_extends_lock;
    Alcotest.test_case "multi eviction" `Quick multi_eviction_for_large_insert;
    Alcotest.test_case "lfu reinsert frequency" `Quick lfu_frequency_reset_on_reinsert;
    Alcotest.test_case "origin prefers closer cache" `Quick origin_prefers_closer_cached_copy;
    Alcotest.test_case "pinned accounting" `Quick pinned_gb_matches_catalog;
    Alcotest.test_case "remote stream locks copy" `Quick serve_remote_locks_remote_copy;
  ]
