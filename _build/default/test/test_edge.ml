(* Edge-case tests: empty demand, degenerate windows, single-VHO networks,
   and other boundary conditions a production library must survive. *)

module G = Vod_topology.Graph
module I = Vod_placement.Instance

let two_node_graph () =
  G.create ~name:"pair" ~n:2 ~edges:[ (0, 1) ] ~populations:[| 1.0; 1.0 |]

let empty_demand_placement () =
  (* A catalog nobody has requested yet must still be placed: one copy of
     every video, wherever it fits. *)
  let graph = two_node_graph () in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:6 ~days:7 ~seed:1)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:2 ~day0:0 ~days:7 ~n_windows:2
      ~window_s:3600.0 [||]
  in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let inst =
    I.create ~graph ~catalog ~demand
      ~disk_gb:(I.uniform_disk ~total_gb:(2.0 *. total) 2)
      ~link_capacity_mbps:(I.uniform_links graph 100.0)
      ()
  in
  let report = Vod_placement.Solve.solve inst in
  let sol = report.Vod_placement.Solve.solution in
  for v = 0 to 5 do
    Alcotest.(check bool) "placed" true (Vod_placement.Solution.copies sol v >= 1)
  done;
  Alcotest.(check bool) "no violation" true (sol.Vod_placement.Solution.max_violation <= 0.01)

let demand_fewer_windows_than_requested () =
  (* A one-day batch cannot produce two distinct-day peak windows. *)
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:4 ~days:7 ~seed:2)
  in
  let reqs =
    [| { Vod_workload.Trace.time_s = 100.0; vho = 0; video = 0 } |]
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:2 ~day0:0 ~days:1 ~n_windows:2
      ~window_s:3600.0 reqs
  in
  Alcotest.(check int) "one window" 1 (Array.length demand.Vod_workload.Demand.windows)

let single_metro_network () =
  (* One VHO, no links: everything is local; the MIP degenerates to "store
     everything here", which must fit and solve cleanly. *)
  let graph = two_node_graph () in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:5 ~days:7 ~seed:3)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog ~populations:[| 1.0; 0.0001 |]
         ~mean_daily_requests:50.0 ~seed:4)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:2 ~day0:0 ~days:7 ~n_windows:1
      ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let inst =
    I.create ~graph ~catalog ~demand
      ~disk_gb:[| 2.0 *. total; 2.0 *. total |]
      ~link_capacity_mbps:(I.uniform_links graph 1000.0)
      ()
  in
  let report = Vod_placement.Solve.solve inst in
  Alcotest.(check bool) "clean solve" true
    (report.Vod_placement.Solve.solution.Vod_placement.Solution.max_violation <= 0.01)

let link_infeasible_detected () =
  (* Disk just above one library copy, links near zero: remote serving is
     unavoidable but impossible — the probe must say infeasible. *)
  let graph = two_node_graph () in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:8 ~days:7 ~seed:5)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog ~populations:[| 1.0; 1.0 |]
         ~mean_daily_requests:400.0 ~seed:6)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:2 ~day0:0 ~days:7 ~n_windows:2
      ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let inst =
    I.create ~graph ~catalog ~demand
      ~disk_gb:(I.uniform_disk ~total_gb:(1.1 *. total) 2)
      ~link_capacity_mbps:(I.uniform_links graph 0.01)
      ()
  in
  Alcotest.(check bool) "infeasible" false (Vod_placement.Feasibility.feasible inst)

let trace_rejects_bad_requests () =
  Alcotest.check_raises "vho range" (Invalid_argument "Trace.create: vho out of range")
    (fun () ->
      ignore
        (Vod_workload.Trace.create ~n_vhos:2 ~days:1
           [| { Vod_workload.Trace.time_s = 0.0; vho = 5; video = 0 } |]));
  Alcotest.check_raises "time range"
    (Invalid_argument "Trace.create: request time outside trace horizon") (fun () ->
      ignore
        (Vod_workload.Trace.create ~n_vhos:2 ~days:1
           [| { Vod_workload.Trace.time_s = 100_000.0; vho = 0; video = 0 } |]))

let metrics_rejects_bad_bin () =
  Alcotest.check_raises "bin size" (Invalid_argument "Metrics.create: bin_s must be positive")
    (fun () -> ignore (Vod_sim.Metrics.create ~n_links:1 ~horizon_s:100.0 ~bin_s:0.0 ()))

let zero_capacity_cache_always_misses () =
  let c = Vod_cache.Cache.create ~policy:Vod_cache.Cache.Lru ~capacity_gb:0.0 in
  let inserted, _ = Vod_cache.Cache.insert c 1 ~size_gb:0.1 ~now:0.0 ~busy_until:0.0 in
  Alcotest.(check bool) "cannot insert" false inserted;
  Alcotest.(check bool) "no hit" false (Vod_cache.Cache.touch c 1 ~busy_until:0.0)

let estimator_first_episode_no_donor () =
  (* An episode with no predecessor gets no clone; prediction must not
     crash. *)
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:60 ~days:7 ~seed:7)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:(Vod_topology.Topologies.zipf_populations ~seed:7 4)
         ~mean_daily_requests:100.0 ~seed:8)
  in
  let pred =
    Vod_workload.Estimator.predict Vod_workload.Estimator.Series_blockbuster catalog
      trace ~week_start:7
  in
  Alcotest.(check bool) "prediction produced" true (Array.length pred >= 0)

let suite =
  [
    Alcotest.test_case "empty demand placement" `Quick empty_demand_placement;
    Alcotest.test_case "fewer windows than requested" `Quick demand_fewer_windows_than_requested;
    Alcotest.test_case "single metro network" `Quick single_metro_network;
    Alcotest.test_case "link infeasibility detected" `Quick link_infeasible_detected;
    Alcotest.test_case "trace validation" `Quick trace_rejects_bad_requests;
    Alcotest.test_case "metrics validation" `Quick metrics_rejects_bad_bin;
    Alcotest.test_case "zero-capacity cache" `Quick zero_capacity_cache_always_misses;
    Alcotest.test_case "estimator no donor" `Quick estimator_first_episode_no_donor;
  ]
