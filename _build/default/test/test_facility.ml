(* Tests for the UFL block solvers: heuristics vs exact enumeration, and
   validity of the dual-ascent lower bound (the linchpin of the engine's
   honest optimality gaps). *)

module U = Vod_facility.Ufl

let random_instance rng ~n_fac ~n_cli =
  let open_cost = Array.init n_fac (fun _ -> Vod_util.Rng.float rng *. 5.0) in
  let service =
    Array.init n_cli (fun _ -> Array.init n_fac (fun _ -> Vod_util.Rng.float rng *. 10.0))
  in
  { U.open_cost; service }

let hand_instance () =
  (* 2 facilities, 2 clients; opening both is optimal:
     open costs 1, 1; service: c0: [0, 10], c1: [10, 0].
     best = open both: 1+1+0+0 = 2. *)
  {
    U.open_cost = [| 1.0; 1.0 |];
    service = [| [| 0.0; 10.0 |]; [| 10.0; 0.0 |] |];
  }

let exact_hand () =
  let sol = U.exact (hand_instance ()) in
  Alcotest.(check (float 1e-9)) "optimal cost" 2.0 sol.U.cost;
  Alcotest.(check bool) "both open" true (sol.U.open_set.(0) && sol.U.open_set.(1))

let single_facility_case () =
  (* Expensive opens force a single facility. *)
  let t =
    {
      U.open_cost = [| 100.0; 100.0 |];
      service = [| [| 1.0; 2.0 |]; [| 3.0; 1.0 |] |];
    }
  in
  let sol = U.exact t in
  Alcotest.(check (float 1e-9)) "one open" 103.0 sol.U.cost

let no_clients () =
  (* A video nobody requested still needs one copy: cheapest open. *)
  let t = { U.open_cost = [| 3.0; 1.0; 2.0 |]; service = [||] } in
  let g = U.greedy t in
  Alcotest.(check (float 1e-9)) "cheapest facility" 1.0 g.U.cost;
  Alcotest.(check bool) "facility 1" true g.U.open_set.(1)

let eval_open_requires_open () =
  let t = hand_instance () in
  Alcotest.check_raises "no open facility"
    (Invalid_argument "Ufl.eval_open: no open facility") (fun () ->
      ignore (U.eval_open t [| false; false |]))

let validation () =
  Alcotest.check_raises "negative open" (Invalid_argument "Ufl: bad opening cost")
    (fun () -> U.validate { U.open_cost = [| -1.0 |]; service = [||] });
  Alcotest.check_raises "ragged" (Invalid_argument "Ufl: service row arity")
    (fun () -> U.validate { U.open_cost = [| 1.0; 2.0 |]; service = [| [| 1.0 |] |] })

let greedy_vs_exact_gap () =
  let rng = Vod_util.Rng.create 17 in
  let worst = ref 1.0 in
  for _ = 1 to 40 do
    let t = random_instance rng ~n_fac:6 ~n_cli:8 in
    let e = U.exact t and g = U.greedy t in
    Alcotest.(check bool) "greedy >= exact" true (g.U.cost >= e.U.cost -. 1e-9);
    let ratio = g.U.cost /. Float.max e.U.cost 1e-9 in
    if ratio > !worst then worst := ratio
  done;
  (* Greedy should be within 2x on these small random instances. *)
  Alcotest.(check bool) "greedy not terrible" true (!worst < 2.0)

let local_search_improves () =
  let rng = Vod_util.Rng.create 23 in
  for _ = 1 to 40 do
    let t = random_instance rng ~n_fac:6 ~n_cli:8 in
    let e = U.exact t and g = U.greedy t and ls = U.local_search t in
    Alcotest.(check bool) "ls <= greedy" true (ls.U.cost <= g.U.cost +. 1e-9);
    Alcotest.(check bool) "ls >= exact" true (ls.U.cost >= e.U.cost -. 1e-9)
  done

let assignment_is_cheapest_open () =
  let rng = Vod_util.Rng.create 31 in
  let t = random_instance rng ~n_fac:8 ~n_cli:10 in
  let sol = U.local_search t in
  Array.iteri
    (fun j assigned ->
      Alcotest.(check bool) "assigned facility open" true sol.U.open_set.(assigned);
      Array.iteri
        (fun i is_open ->
          if is_open then
            Alcotest.(check bool) "no cheaper open facility" true
              (t.U.service.(j).(i) >= t.U.service.(j).(assigned) -. 1e-9))
        sol.U.open_set)
    sol.U.assign

(* The keystone property: dual ascent <= exact optimum (bound validity),
   checked exhaustively against enumeration. *)
let prop_dual_bound_valid =
  QCheck.Test.make ~name:"dual ascent lower-bounds the exact UFL optimum" ~count:120
    QCheck.(pair small_int small_int)
    (fun (seed, shape) ->
      let rng = Vod_util.Rng.create (1000 + seed + (shape * 7919)) in
      let n_fac = 2 + (shape mod 6) and n_cli = 1 + (seed mod 8) in
      let t = random_instance rng ~n_fac ~n_cli in
      let bound, v = U.dual_ascent t in
      let e = U.exact t in
      (* Validity, plus explicit dual feasibility of v. *)
      let feasible =
        Array.for_all
          (fun _ -> true)
          v
        &&
        let ok = ref true in
        for i = 0 to n_fac - 1 do
          let load = ref 0.0 in
          Array.iteri
            (fun j vj -> load := !load +. Float.max 0.0 (vj -. t.U.service.(j).(i)))
            v;
          if !load > t.U.open_cost.(i) +. 1e-6 then ok := false
        done;
        !ok
      in
      feasible && bound <= e.U.cost +. 1e-6)

let dual_bound_reasonably_tight () =
  let rng = Vod_util.Rng.create 41 in
  let ratios = ref [] in
  for _ = 1 to 40 do
    let t = random_instance rng ~n_fac:5 ~n_cli:8 in
    let bound, _ = U.dual_ascent t in
    let e = U.exact t in
    ratios := (bound /. Float.max e.U.cost 1e-9) :: !ratios
  done;
  let avg = List.fold_left ( +. ) 0.0 !ratios /. float_of_int (List.length !ratios) in
  (* Erlenkotter ascent is typically within ~15% on random instances. *)
  Alcotest.(check bool) "average tightness > 0.7" true (avg > 0.7)

let exact_rejects_large () =
  let t = { U.open_cost = Array.make 21 1.0; service = [||] } in
  Alcotest.check_raises "too many facilities"
    (Invalid_argument "Ufl.exact: too many facilities (max 20)") (fun () ->
      ignore (U.exact t))

let suite =
  [
    Alcotest.test_case "exact hand instance" `Quick exact_hand;
    Alcotest.test_case "single facility" `Quick single_facility_case;
    Alcotest.test_case "no clients" `Quick no_clients;
    Alcotest.test_case "eval_open guard" `Quick eval_open_requires_open;
    Alcotest.test_case "validation" `Quick validation;
    Alcotest.test_case "greedy vs exact" `Quick greedy_vs_exact_gap;
    Alcotest.test_case "local search improves" `Quick local_search_improves;
    Alcotest.test_case "assignment cheapest-open" `Quick assignment_is_cheapest_open;
    Alcotest.test_case "dual bound tightness" `Quick dual_bound_reasonably_tight;
    Alcotest.test_case "exact size guard" `Quick exact_rejects_large;
    QCheck_alcotest.to_alcotest prop_dual_bound_valid;
  ]
