(* Tests for the iterative peak-window refinement (paper Sec. VI-B). *)

module W = Vod_core.Window_refine

let tiny_scenario () =
  let graph =
    Vod_topology.Graph.create ~name:"ring5" ~n:5
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]
      ~populations:[| 3.0; 1.0; 1.0; 1.0; 1.0 |]
  in
  Vod_core.Scenario.make ~days:7 ~requests_per_video_per_day:15.0 ~seed:31 ~graph
    ~n_videos:80 ()

let fast_params = { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 20 }

let refinement_runs_and_reports () =
  let sc = tiny_scenario () in
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  let r =
    W.solve ~params:fast_params ~max_rounds:3 sc ~day0:0 ~disk_gb:disk
      ~link_capacity_mbps:200.0 ()
  in
  Alcotest.(check bool) "at least one round" true (List.length r.W.rounds >= 1);
  Alcotest.(check bool) "at most max rounds" true (List.length r.W.rounds <= 3);
  (* Window sets grow by exactly one per extra round. *)
  let sizes = List.map (fun ri -> Array.length ri.W.windows) r.W.rounds in
  let rec increasing = function
    | a :: (b :: _ as rest) -> b = a + 1 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "windows grow one per round" true (increasing sizes);
  (* Converged means the final realized overload is within tolerance. *)
  let last = List.nth r.W.rounds (List.length r.W.rounds - 1) in
  if r.W.converged then
    Alcotest.(check bool) "overload within tolerance" true (last.W.worst_overload <= 0.05)

let generous_links_converge_immediately () =
  let sc = tiny_scenario () in
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:3.0 in
  let r =
    W.solve ~params:fast_params ~max_rounds:3 sc ~day0:0 ~disk_gb:disk
      ~link_capacity_mbps:50_000.0 ()
  in
  Alcotest.(check bool) "converged" true r.W.converged;
  Alcotest.(check int) "single round" 1 (List.length r.W.rounds)

let suite =
  [
    Alcotest.test_case "refinement runs" `Slow refinement_runs_and_reports;
    Alcotest.test_case "generous links converge" `Quick generous_links_converge_immediately;
  ]
