(* Tests for vod_topology: graph construction, shortest paths, topology
   generators matching the paper's node/link counts. *)

module G = Vod_topology.Graph
module P = Vod_topology.Paths
module T = Vod_topology.Topologies

let small_graph () =
  (* 0 - 1 - 2
     |       |
     +---3---+  *)
  G.create ~name:"test" ~n:4
    ~edges:[ (0, 1); (1, 2); (0, 3); (3, 2) ]
    ~populations:[| 1.0; 1.0; 1.0; 1.0 |]

let graph_counts () =
  let g = small_graph () in
  Alcotest.(check int) "nodes" 4 (G.n_nodes g);
  Alcotest.(check int) "directed links" 8 (G.n_links g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check int) "degree of 0" 2 (G.degree g 0)

let graph_validation () =
  let mk edges () =
    ignore (G.create ~name:"x" ~n:3 ~edges ~populations:[| 1.0; 1.0; 1.0 |])
  in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.create: edge endpoint out of range")
    (mk [ (1, 1) ]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.create: edge endpoint out of range")
    (mk [ (0, 5) ]);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.create: duplicate edge")
    (mk [ (0, 1); (1, 0) ])

let reverse_link_involution () =
  let g = small_graph () in
  for id = 0 to G.n_links g - 1 do
    let r = G.reverse_link g id in
    Alcotest.(check int) "reverse of reverse" id (G.reverse_link g r);
    let l = G.link g id and lr = G.link g r in
    Alcotest.(check int) "src/dst swapped" l.G.src lr.G.dst;
    Alcotest.(check int) "dst/src swapped" l.G.dst lr.G.src
  done

let paths_basic () =
  let g = small_graph () in
  let p = P.compute g in
  Alcotest.(check int) "self hops" 0 (P.hops p ~src:1 ~dst:1);
  Alcotest.(check int) "adjacent" 1 (P.hops p ~src:0 ~dst:1);
  Alcotest.(check int) "two hops" 2 (P.hops p ~src:0 ~dst:2);
  Alcotest.(check int) "self path empty" 0 (Array.length (P.path_links p ~src:2 ~dst:2));
  Alcotest.(check int) "diameter" 2 (P.diameter p)

(* Path links must form a contiguous walk from src to dst. *)
let path_links_contiguous (g : G.t) (p : P.t) =
  let n = G.n_nodes g in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let links = P.path_links p ~src ~dst in
        Alcotest.(check int) "path length = hops" (P.hops p ~src ~dst) (Array.length links);
        let cur = ref src in
        Array.iter
          (fun lid ->
            let l = G.link g lid in
            Alcotest.(check int) "walk continuity" !cur l.G.src;
            cur := l.G.dst)
          links;
        Alcotest.(check int) "walk ends at dst" dst !cur
      end
    done
  done

let paths_walk_small () =
  let g = small_graph () in
  path_links_contiguous g (P.compute g)

let paths_walk_backbone () =
  let g = T.backbone55 () in
  path_links_contiguous g (P.compute g)

let paths_disconnected () =
  let g =
    G.create ~name:"disc" ~n:4 ~edges:[ (0, 1); (2, 3) ]
      ~populations:[| 1.0; 1.0; 1.0; 1.0 |]
  in
  Alcotest.(check bool) "not connected" false (G.is_connected g);
  Alcotest.check_raises "paths reject"
    (Invalid_argument "Paths.compute: graph is not connected") (fun () ->
      ignore (P.compute g))

let topology_counts () =
  let check name g nodes links =
    Alcotest.(check int) (name ^ " nodes") nodes (G.n_nodes g);
    Alcotest.(check int) (name ^ " physical links") links (G.n_links g / 2);
    Alcotest.(check bool) (name ^ " connected") true (G.is_connected g)
  in
  (* The paper's published counts: backbone 55/76, Tiscali 49/86, Sprint
     33/69, Ebone 23/38 (Table IV). *)
  check "backbone" (T.backbone55 ()) 55 76;
  check "tiscali" (T.tiscali ()) 49 86;
  check "sprint" (T.sprint ()) 33 69;
  check "ebone" (T.ebone ()) 23 38

let tree_and_mesh () =
  let g = T.backbone55 () in
  let tree = T.tree_of g in
  Alcotest.(check int) "tree links" 54 (G.n_links tree / 2);
  Alcotest.(check bool) "tree connected" true (G.is_connected tree);
  let mesh = T.full_mesh_of g in
  Alcotest.(check int) "mesh links" (55 * 54 / 2) (G.n_links mesh / 2);
  let p = P.compute mesh in
  Alcotest.(check int) "mesh diameter 1" 1 (P.diameter p)

let populations_zipf () =
  let pops = T.zipf_populations ~seed:1 20 in
  Alcotest.(check int) "size" 20 (Array.length pops);
  Array.iter (fun p -> Alcotest.(check bool) "positive" true (p > 0.0)) pops;
  (* The largest metro must be the Zipf head: weight 1. *)
  Alcotest.(check (float 1e-9)) "max is 1" 1.0 (Array.fold_left Float.max 0.0 pops)

let top_population_ordering () =
  let g = T.backbone55 () in
  let top = T.top_population_nodes g 10 in
  Alcotest.(check int) "count" 10 (Array.length top);
  for i = 0 to 8 do
    Alcotest.(check bool) "descending" true
      (g.G.populations.(top.(i)) >= g.G.populations.(top.(i + 1)))
  done

let determinism () =
  let g1 = T.backbone55 () and g2 = T.backbone55 () in
  Alcotest.(check bool) "same edges" true
    (Array.for_all2 (fun (a : G.link) b -> a.G.src = b.G.src && a.G.dst = b.G.dst)
       g1.G.links g2.G.links)

let suite =
  [
    Alcotest.test_case "graph counts" `Quick graph_counts;
    Alcotest.test_case "graph validation" `Quick graph_validation;
    Alcotest.test_case "reverse link involution" `Quick reverse_link_involution;
    Alcotest.test_case "paths basics" `Quick paths_basic;
    Alcotest.test_case "path links contiguous (small)" `Quick paths_walk_small;
    Alcotest.test_case "path links contiguous (backbone55)" `Quick paths_walk_backbone;
    Alcotest.test_case "disconnected rejected" `Quick paths_disconnected;
    Alcotest.test_case "paper topology counts" `Quick topology_counts;
    Alcotest.test_case "tree and mesh variants" `Quick tree_and_mesh;
    Alcotest.test_case "zipf populations" `Quick populations_zipf;
    Alcotest.test_case "top population ordering" `Quick top_population_ordering;
    Alcotest.test_case "generator determinism" `Quick determinism;
  ]
