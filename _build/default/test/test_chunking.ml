(* Tests for chunked placement (paper Sec. V-B) and the LRFU cache policy
   (the paper's ref. [18] recency/frequency spectrum). *)

module Ch = Vod_placement.Chunking
module I = Vod_placement.Instance
module C = Vod_cache.Cache

let world () =
  let graph =
    Vod_topology.Graph.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 3.0; 2.0; 1.0; 1.0 |]
  in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:20 ~days:7 ~seed:21)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:graph.Vod_topology.Graph.populations ~mean_daily_requests:400.0
         ~seed:22)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7 ~n_windows:2
      ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  (graph, catalog, demand)

let split_conserves_bytes () =
  let _, catalog, _ = world () in
  let t = Ch.split catalog ~chunk_gb:0.5 in
  Alcotest.(check (float 1e-6)) "total bytes preserved"
    (Vod_workload.Catalog.total_size_gb catalog)
    (Vod_workload.Catalog.total_size_gb t.Ch.chunked);
  (* Chunk counts match sizes: 2GB -> 4, 1GB -> 2, 0.5GB -> 1, 0.1GB -> 1. *)
  Array.iteri
    (fun video ids ->
      let s = Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video) in
      let expected = max 1 (int_of_float (ceil ((s /. 0.5) -. 1e-9))) in
      Alcotest.(check int) "chunk count" expected (Array.length ids))
    t.Ch.chunks_of;
  (* parent_of inverts chunks_of. *)
  Array.iteri
    (fun parent ids ->
      Array.iter
        (fun chunk -> Alcotest.(check int) "parent_of" parent t.Ch.parent_of.(chunk))
        ids)
    t.Ch.chunks_of

let split_rejects_bad_chunk () =
  let _, catalog, _ = world () in
  Alcotest.check_raises "bad chunk size"
    (Invalid_argument "Chunking.split: chunk_gb must be one of 0.1, 0.5, 1.0, 2.0")
    (fun () -> ignore (Ch.split catalog ~chunk_gb:0.3))

let demand_conserves_load () =
  let _, catalog, demand = world () in
  let t = Ch.split catalog ~chunk_gb:0.5 in
  let d = Ch.demand t demand in
  Alcotest.(check int) "item count" (Ch.n_chunks t) d.Vod_workload.Demand.n_videos;
  (* Peak-window bandwidth-demand is conserved: sum over chunks of
     size * concurrency = parent's (each chunk carries f/count and sizes
     sum to the parent's). *)
  let window_load (dm : Vod_workload.Demand.t) (cat : Vod_workload.Catalog.t) w =
    let acc = ref 0.0 in
    Array.iteri
      (fun video pairs ->
        let r = Vod_workload.Video.rate_mbps (Vod_workload.Catalog.video cat video) in
        Array.iter (fun (_, c) -> acc := !acc +. (r *. c)) pairs)
      dm.Vod_workload.Demand.f.(w);
    !acc
  in
  (* Chunked per-window concurrency sums to the original across chunks,
     scaled by 1 (each chunk has f/count, count chunks). *)
  let orig = window_load demand catalog 0 in
  let chunked = window_load d t.Ch.chunked 0 in
  Alcotest.(check bool)
    (Printf.sprintf "window stream count conserved (%.1f vs %.1f)" orig chunked)
    true
    (Float.abs (orig -. chunked) <= 1e-6 *. Float.max 1.0 orig)

let chunked_solve_places_all () =
  let graph, catalog, demand = world () in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let inst =
    I.create ~graph ~catalog ~demand
      ~disk_gb:(I.uniform_disk ~total_gb:(2.0 *. total) 4)
      ~link_capacity_mbps:(I.uniform_links graph 500.0)
      ()
  in
  let t, chunked_inst = Ch.instance inst ~chunk_gb:0.5 in
  let report = Vod_placement.Solve.solve chunked_inst in
  let sol = report.Vod_placement.Solve.solution in
  for parent = 0 to Vod_workload.Catalog.n_videos catalog - 1 do
    let full, total_chunks = Ch.parent_copies t sol parent in
    Alcotest.(check bool) "at least one full copy worth of chunks" true (full >= 1);
    Alcotest.(check bool) "chunk copies >= chunk count" true
      (total_chunks >= Array.length t.Ch.chunks_of.(parent))
  done

let chunking_packs_tighter () =
  (* With per-VHO disks smaller than the largest video, whole-video
     placement is infeasible while chunked placement can still fit
     (the point of Sec. V-B). *)
  let graph =
    Vod_topology.Graph.create ~name:"triangle" ~n:3
      ~edges:[ (0, 1); (1, 2); (2, 0) ]
      ~populations:[| 1.0; 1.0; 1.0 |]
  in
  (* Hand-build a tiny catalog: two 2GB movies (4 GB library). *)
  let videos =
    Array.init 2 (fun id ->
        {
          Vod_workload.Video.id;
          size_class = Vod_workload.Video.Long_movie;
          kind = Vod_workload.Video.Regular;
          release_day = 0;
          base_weight = 1.0;
        })
  in
  let catalog = { Vod_workload.Catalog.videos; n_series = 0; trace_days = 7 } in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:3 ~day0:0 ~days:7 ~n_windows:1
      ~window_s:3600.0
      [| { Vod_workload.Trace.time_s = 10.0; vho = 0; video = 0 } |]
  in
  (* 1.5 GB per VHO (4.5 GB aggregate > 4 GB library), but no single VHO
     can hold a whole 2 GB movie. *)
  let inst =
    I.create ~graph ~catalog ~demand ~disk_gb:[| 1.5; 1.5; 1.5 |]
      ~link_capacity_mbps:(I.uniform_links graph 1000.0)
      ()
  in
  (* The LP relaxation is feasible either way (y may split fractionally);
     the difference appears after rounding: a whole 2 GB video cannot fit
     any 1.5 GB disk, so the integral whole-video solution must violate
     disk capacity by >= 1/3, while chunked placement rounds cleanly. *)
  let whole = Vod_placement.Solve.solve inst in
  Alcotest.(check bool) "whole-video rounding violates disks" true
    (whole.Vod_placement.Solve.solution.Vod_placement.Solution.max_violation >= 0.30);
  let _, chunked_inst = Ch.instance inst ~chunk_gb:0.5 in
  let chunked = Vod_placement.Solve.solve chunked_inst in
  Alcotest.(check bool) "chunked rounding fits" true
    (chunked.Vod_placement.Solve.solution.Vod_placement.Solution.max_violation <= 0.05)

(* --- LRFU --- *)

let lrfu_lambda_one_is_lru () =
  (* lambda = 1: any hit beats all older CRF mass; eviction = LRU. *)
  let c = C.create ~policy:(C.Lrfu 1.0) ~capacity_gb:2.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:0.0);
  ignore (C.insert c 2 ~size_gb:1.0 ~now:1.0 ~busy_until:1.0);
  (* 1 is hit many times early, then 2 is hit once later. With lambda = 1
     the recent hit on 2 outweighs 1's decayed history. *)
  for _ = 1 to 5 do
    ignore (C.touch c 1 ~busy_until:0.0)
  done;
  ignore (C.touch c 2 ~busy_until:0.0);
  ignore (C.touch c 2 ~busy_until:0.0);
  ignore (C.touch c 2 ~busy_until:0.0);
  ignore (C.touch c 2 ~busy_until:0.0);
  let _, evicted = C.insert c 3 ~size_gb:1.0 ~now:10.0 ~busy_until:10.0 in
  Alcotest.(check (list int)) "evicts stale video" [ 1 ] evicted

let lrfu_small_lambda_is_lfu () =
  (* lambda near 0: frequency dominates recency. *)
  let c = C.create ~policy:(C.Lrfu 0.001) ~capacity_gb:2.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:0.0);
  for _ = 1 to 5 do
    ignore (C.touch c 1 ~busy_until:0.0)
  done;
  ignore (C.insert c 2 ~size_gb:1.0 ~now:1.0 ~busy_until:1.0);
  ignore (C.touch c 2 ~busy_until:0.0);
  (* 2 is more recent but far less frequent: LFU-like eviction takes 2. *)
  let _, evicted = C.insert c 3 ~size_gb:1.0 ~now:10.0 ~busy_until:10.0 in
  Alcotest.(check (list int)) "evicts infrequent video" [ 2 ] evicted

let lrfu_validation () =
  Alcotest.check_raises "lambda range"
    (Invalid_argument "Cache.create: LRFU lambda must be in (0, 1]") (fun () ->
      ignore (C.create ~policy:(C.Lrfu 0.0) ~capacity_gb:1.0))

let lrfu_fleet_runs () =
  let graph, catalog, _ = world () in
  let paths = Vod_topology.Paths.compute graph in
  let fleet =
    Vod_cache.Fleet.random_single ~paths ~catalog ~disk_gb:[| 10.0; 10.0; 10.0; 10.0 |]
      ~policy:(C.Lrfu 0.5) ~seed:3
  in
  let o = Vod_cache.Fleet.serve fleet ~video:0 ~vho:1 ~now:0.0 in
  Alcotest.(check bool) "serves" true (o.Vod_cache.Fleet.server >= 0)

let suite =
  [
    Alcotest.test_case "split conserves bytes" `Quick split_conserves_bytes;
    Alcotest.test_case "split validation" `Quick split_rejects_bad_chunk;
    Alcotest.test_case "demand conserved" `Quick demand_conserves_load;
    Alcotest.test_case "chunked solve places all" `Quick chunked_solve_places_all;
    Alcotest.test_case "chunking packs tighter" `Quick chunking_packs_tighter;
    Alcotest.test_case "lrfu lambda=1 ~ lru" `Quick lrfu_lambda_one_is_lru;
    Alcotest.test_case "lrfu lambda->0 ~ lfu" `Quick lrfu_small_lambda_is_lfu;
    Alcotest.test_case "lrfu validation" `Quick lrfu_validation;
    Alcotest.test_case "lrfu fleet runs" `Quick lrfu_fleet_runs;
  ]
