(* Cross-module property tests (qcheck): topology generators, path
   symmetry, simplex-vs-EPF agreement already live in their module suites;
   this suite adds randomized structural properties that span modules. *)

module G = Vod_topology.Graph
module P = Vod_topology.Paths
module T = Vod_topology.Topologies

let prop_generated_graphs_connected =
  QCheck.Test.make ~name:"ring_plus_chords graphs are connected with exact counts"
    ~count:40
    QCheck.(pair (int_range 4 40) (int_range 0 30))
    (fun (n, extra) ->
      let max_edges = n * (n - 1) / 2 in
      let target = min max_edges (n + extra) in
      let g = T.ring_plus_chords ~name:"p" ~n ~target_edges:target ~seed:(n + extra) in
      G.is_connected g && G.n_links g = 2 * target)

let prop_hops_symmetric =
  QCheck.Test.make ~name:"hop counts are symmetric on undirected topologies"
    ~count:15 QCheck.(int_range 5 30)
    (fun n ->
      let g = T.ring_plus_chords ~name:"s" ~n ~target_edges:(n + 4) ~seed:n in
      let p = P.compute g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if P.hops p ~src:i ~dst:j <> P.hops p ~src:j ~dst:i then ok := false
        done
      done;
      !ok)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"shortest-path hops satisfy the triangle inequality"
    ~count:15 QCheck.(int_range 5 25)
    (fun n ->
      let g = T.ring_plus_chords ~name:"t" ~n ~target_edges:(n + 3) ~seed:(n * 3) in
      let p = P.compute g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if P.hops p ~src:i ~dst:j > P.hops p ~src:i ~dst:k + P.hops p ~src:k ~dst:j
            then ok := false
          done
        done
      done;
      !ok)

let prop_trace_deterministic =
  QCheck.Test.make ~name:"trace generation is deterministic in the seed" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let catalog =
        Vod_workload.Catalog.generate
          (Vod_workload.Catalog.default_params ~n:80 ~days:7 ~seed)
      in
      let pops = T.zipf_populations ~seed 6 in
      let mk () =
        Vod_workload.Tracegen.generate
          (Vod_workload.Tracegen.default_params ~catalog ~populations:pops
             ~mean_daily_requests:200.0 ~seed)
      in
      let a = mk () and b = mk () in
      Vod_workload.Trace.length a = Vod_workload.Trace.length b
      && Array.for_all2
           (fun (x : Vod_workload.Trace.request) (y : Vod_workload.Trace.request) ->
             x.Vod_workload.Trace.time_s = y.Vod_workload.Trace.time_s
             && x.Vod_workload.Trace.video = y.Vod_workload.Trace.video
             && x.Vod_workload.Trace.vho = y.Vod_workload.Trace.vho)
           a.Vod_workload.Trace.requests b.Vod_workload.Trace.requests)

(* The engine's aggregate usage never undercounts: for random two-point
   block systems, the outcome's row_usage must equal the sum over combos
   within float tolerance (detects incremental-update drift). *)
let prop_engine_usage_conserved =
  QCheck.Test.make ~name:"engine row usage matches combo recomputation" ~count:10
    QCheck.(int_range 1 500)
    (fun seed ->
      let module E = Vod_epf.Engine in
      let module Sp = Vod_epf.Sparse in
      let rng = Vod_util.Rng.create seed in
      let k = 2 + Vod_util.Rng.int rng 6 in
      let m = 1 + Vod_util.Rng.int rng 3 in
      let mk _ =
        let pa =
          {
            E.obj = 1.0 +. Vod_util.Rng.float rng;
            usage = Sp.of_assoc [ (Vod_util.Rng.int rng m, 0.5 +. Vod_util.Rng.float rng) ];
            data = ();
          }
        in
        let pb =
          {
            E.obj = 2.0 +. Vod_util.Rng.float rng;
            usage = Sp.of_assoc [ (Vod_util.Rng.int rng m, 0.1 +. (0.2 *. Vod_util.Rng.float rng)) ];
            data = ();
          }
        in
        let priced ~obj_price ~row_price (p : unit E.point) =
          (obj_price *. p.E.obj) +. Sp.dot row_price p.E.usage
        in
        let optimize ~obj_price ~row_price =
          if priced ~obj_price ~row_price pa <= priced ~obj_price ~row_price pb
          then pa
          else pb
        in
        {
          E.optimize;
          optimize_strong = optimize;
          lower_bound =
            (fun ~row_price ->
              Float.min
                (priced ~obj_price:1.0 ~row_price pa)
                (priced ~obj_price:1.0 ~row_price pb));
          initial = (fun () -> pa);
        }
      in
      let oracles = Array.init k mk in
      let capacities = Array.init m (fun _ -> 0.5 +. (2.0 *. Vod_util.Rng.float rng)) in
      let outcome =
        E.solve ~round:false
          { E.default_params with E.max_passes = 25; seed }
          ~capacities ~oracles
      in
      let usage = Array.make m 0.0 in
      Array.iter
        (fun combo ->
          List.iter (fun ((p : unit E.point), w) -> Sp.add_into usage w p.E.usage) combo)
        outcome.E.combos;
      let ok = ref true in
      for i = 0 to m - 1 do
        if Float.abs (usage.(i) -. outcome.E.row_usage.(i)) > 1e-6 then ok := false
      done;
      !ok)

(* Solutions always place every video at least once, regardless of the
   (random) demand pattern. *)
let prop_every_video_placed =
  QCheck.Test.make ~name:"every video gets at least one copy" ~count:6
    QCheck.(int_range 1 100)
    (fun seed ->
      let graph =
        G.create ~name:"sq" ~n:4
          ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
          ~populations:[| 2.0; 1.0; 1.0; 1.0 |]
      in
      let catalog =
        Vod_workload.Catalog.generate
          (Vod_workload.Catalog.default_params ~n:12 ~days:7 ~seed)
      in
      let trace =
        Vod_workload.Tracegen.generate
          (Vod_workload.Tracegen.default_params ~catalog
             ~populations:graph.G.populations ~mean_daily_requests:120.0
             ~seed:(seed + 1))
      in
      let demand =
        Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7
          ~n_windows:2 ~window_s:3600.0 trace.Vod_workload.Trace.requests
      in
      let total = Vod_workload.Catalog.total_size_gb catalog in
      let inst =
        Vod_placement.Instance.create ~graph ~catalog ~demand
          ~disk_gb:(Vod_placement.Instance.uniform_disk ~total_gb:(2.5 *. total) 4)
          ~link_capacity_mbps:(Vod_placement.Instance.uniform_links graph 500.0)
          ()
      in
      let params =
        { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 25; seed }
      in
      let report = Vod_placement.Solve.solve ~params inst in
      let sol = report.Vod_placement.Solve.solution in
      let ok = ref true in
      for v = 0 to 11 do
        if Vod_placement.Solution.copies sol v < 1 then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generated_graphs_connected;
      prop_hops_symmetric;
      prop_triangle_inequality;
      prop_trace_deterministic;
      prop_engine_usage_conserved;
      prop_every_video_placed;
    ]
