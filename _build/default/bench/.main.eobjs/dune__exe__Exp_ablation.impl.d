bench/exp_ablation.ml: Common List Printf Unix Vod_core Vod_epf Vod_placement Vod_util Vod_workload
