bench/exp_update.ml: Common List Printf Vod_core Vod_sim Vod_util Vod_workload
