bench/exp_scaling.ml: Array Common Gc List Printf Sys Vod_core Vod_epf Vod_lp Vod_placement Vod_topology Vod_util
