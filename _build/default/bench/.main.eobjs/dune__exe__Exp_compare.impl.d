bench/exp_compare.ml: Array Common List Printf Vod_cache Vod_core Vod_placement Vod_sim Vod_util Vod_workload
