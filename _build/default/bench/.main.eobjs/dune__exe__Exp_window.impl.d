bench/exp_window.ml: Array Common Float List Printf Vod_cache Vod_core Vod_placement Vod_sim Vod_topology Vod_util Vod_workload
