bench/main.ml: Array Common Exp_ablation Exp_cache_sweep Exp_compare Exp_feasibility Exp_origin Exp_scaling Exp_trace Exp_update Exp_window Lazy List Micro Printf Sys
