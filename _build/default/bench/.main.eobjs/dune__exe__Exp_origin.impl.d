bench/exp_origin.ml: Common List Printf Vod_core Vod_sim Vod_util
