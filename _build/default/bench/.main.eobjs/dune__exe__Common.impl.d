bench/common.ml: Array Printf Sys Unix Vod_core Vod_epf Vod_placement
