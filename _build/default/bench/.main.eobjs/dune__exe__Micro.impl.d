bench/micro.ml: Analyze Array Bechamel Benchmark Common Hashtbl Instance List Measure Printf Staged Test Time Toolkit Vod_cache Vod_core Vod_facility Vod_placement Vod_topology Vod_util Vod_workload
