bench/exp_feasibility.ml: Common List Printf Vod_core Vod_placement Vod_topology Vod_util Vod_workload
