bench/exp_cache_sweep.ml: Common List Printf Vod_core Vod_sim Vod_util
