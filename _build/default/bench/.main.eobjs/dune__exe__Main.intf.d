bench/main.mli:
