bench/exp_trace.ml: Array Common Float List Printf Vod_core Vod_topology Vod_util Vod_workload
