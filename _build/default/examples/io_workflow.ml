(* Operational I/O workflow: the loop a provider would actually run.

   1. Export the request log (here: a generated trace standing in for the
      real log) to CSV.
   2. Reload it, build the week's demand model, solve the placement.
   3. Export the placement to CSV (the artifact handed to the delivery
      system).
   4. Reload the placement and evaluate it in the simulator, as an auditor
      who only has the two CSV files would.

     dune exec examples/io_workflow.exe *)

let () =
  let dir = Filename.get_temp_dir_name () in
  let trace_csv = Filename.concat dir "vod_requests.csv" in
  let placement_csv = Filename.concat dir "vod_placement.csv" in
  (* 1. The "request log". *)
  let sc = Vod_core.Scenario.backbone ~n_videos:400 ~days:14 ~seed:77 () in
  Vod_workload.Trace_io.save_csv sc.Vod_core.Scenario.trace trace_csv;
  Printf.printf "wrote %s (%d requests)\n" trace_csv
    (Vod_workload.Trace.length sc.Vod_core.Scenario.trace);
  (* 2. Reload and solve week 1. *)
  let n_vhos = Vod_topology.Graph.n_nodes sc.Vod_core.Scenario.graph in
  let trace = Vod_workload.Trace_io.load_csv ~n_vhos ~days:14 trace_csv in
  let week1 = Vod_workload.Trace.between_days trace ~day_lo:0 ~day_hi:7 in
  let demand =
    Vod_workload.Demand.of_requests sc.Vod_core.Scenario.catalog ~n_vhos ~day0:0
      ~days:7 ~n_windows:2 ~window_s:3600.0 week1
  in
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  let inst =
    Vod_placement.Instance.create ~graph:sc.Vod_core.Scenario.graph
      ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk
      ~link_capacity_mbps:
        (Vod_placement.Instance.uniform_links sc.Vod_core.Scenario.graph 800.0)
      ()
  in
  let report =
    Vod_placement.Solve.solve
      ~params:{ Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 30 }
      inst
  in
  (* 3. Hand-off artifact. *)
  Vod_placement.Solution_io.save_csv report.Vod_placement.Solve.solution placement_csv;
  Printf.printf "wrote %s (objective %.0f, gap <= %.1f%%)\n" placement_csv
    report.Vod_placement.Solve.solution.Vod_placement.Solution.objective
    (100.0 *. Vod_placement.Solution.gap report.Vod_placement.Solve.solution);
  (* 4. Audit from the CSVs alone: reload both, replay week 2. *)
  let placement =
    Vod_placement.Solution_io.load_csv ~n_vhos
      ~n_videos:(Vod_workload.Catalog.n_videos sc.Vod_core.Scenario.catalog)
      placement_csv
  in
  let fleet =
    Vod_cache.Fleet.mip ~solution:placement ~paths:sc.Vod_core.Scenario.paths
      ~catalog:sc.Vod_core.Scenario.catalog
      ~cache_gb:(Array.map (fun d -> 0.05 *. d) disk)
  in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links sc.Vod_core.Scenario.graph)
      ~horizon_s:(14.0 *. Vod_workload.Trace.seconds_per_day)
      ()
  in
  let week2 = Vod_workload.Trace.between_days trace ~day_lo:7 ~day_hi:14 in
  Vod_sim.Sim.play metrics sc.Vod_core.Scenario.paths sc.Vod_core.Scenario.catalog
    fleet week2;
  Printf.printf
    "audit replay of week 2: %d requests, %.1f%% local, peak link %.0f Mb/s\n"
    metrics.Vod_sim.Metrics.requests
    (100.0 *. Vod_sim.Metrics.local_fraction metrics)
    (Vod_sim.Metrics.max_link_mbps metrics);
  Sys.remove trace_csv;
  Sys.remove placement_csv
