(* Capacity planning: explore the disk/bandwidth tradeoff of Sec. VII-C.
   For a growing link budget, find the minimum aggregate disk (in
   library-size multiples) at which every request can be served — the
   feasibility region of Fig. 11 — for both uniform and heterogeneous
   (large/medium/small) VHO disk splits.

     dune exec examples/capacity_planning.exe *)

let () =
  let sc = Vod_core.Scenario.backbone ~n_videos:500 ~days:7 ~seed:21 () in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let graph = sc.Vod_core.Scenario.graph in
  let catalog = sc.Vod_core.Scenario.catalog in
  let lib = Vod_core.Scenario.library_gb sc in
  let n = Vod_topology.Graph.n_nodes graph in
  Printf.printf
    "planning for %d VHOs, %.0f GB library, %.0f weekly requests\n\n" n lib
    demand.Vod_workload.Demand.total_requests;
  let params =
    {
      Vod_placement.Feasibility.default_probe_params with
      Vod_epf.Engine.max_passes = 15;
    }
  in
  let probe ~disk_of cap =
    Vod_placement.Feasibility.min_disk_multiplier ~params ~lo:1.05 ~hi:8.0
      ~tol:0.08 ~graph ~catalog ~demand ~link_capacity_mbps:cap ~disk_of ()
  in
  let uniform mult = Vod_placement.Instance.uniform_disk ~total_gb:(mult *. lib) n in
  let hetero mult = Vod_core.Scenario.hetero_disk sc ~multiple:mult in
  let rows =
    List.map
      (fun cap ->
        let show = function
          | Some m -> Printf.sprintf "%.2f x library" m
          | None -> "> 8 x library"
        in
        [
          Printf.sprintf "%.0f Mb/s" cap;
          show (probe ~disk_of:uniform cap);
          show (probe ~disk_of:hetero cap);
        ])
      [ 100.0; 200.0; 400.0; 800.0; 1600.0 ]
  in
  Vod_util.Table.print
    ~header:[ "link capacity"; "uniform VHOs"; "hetero VHOs (4:2:1)" ]
    rows;
  print_newline ();
  print_endline
    "Reading the table: more bandwidth substitutes for disk; giving the big\n\
     metros more disk (heterogeneous split) serves the same demand with\n\
     less total storage — the paper's Fig. 11."
