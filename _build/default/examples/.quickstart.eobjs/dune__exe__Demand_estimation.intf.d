examples/demand_estimation.mli:
