examples/cdn_scenario.ml: List Printf Vod_cache Vod_core Vod_epf Vod_sim Vod_topology Vod_util Vod_workload
