examples/cdn_scenario.mli:
