examples/io_workflow.mli:
