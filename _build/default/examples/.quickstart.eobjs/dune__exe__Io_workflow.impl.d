examples/io_workflow.ml: Array Filename Printf Sys Vod_cache Vod_core Vod_epf Vod_placement Vod_sim Vod_topology Vod_workload
