examples/capacity_planning.ml: List Printf Vod_core Vod_epf Vod_placement Vod_topology Vod_util Vod_workload
