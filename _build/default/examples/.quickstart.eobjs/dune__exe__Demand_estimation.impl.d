examples/demand_estimation.ml: Array List Printf Vod_core Vod_epf Vod_sim Vod_util Vod_workload
