examples/quickstart.mli:
