examples/quickstart.ml: Array List Printf String Vod_cache Vod_core Vod_placement Vod_sim Vod_topology Vod_workload
