(* A CDN-style deployment on a public ISP map: compare MIP placement
   against Random+LRU and Top-K+LRU on the Sprint-scale topology,
   replaying three weeks of requests (Sec. III notes the approach applies
   to CDNs directly; Sec. VII-E/F use the RocketFuel maps).

     dune exec examples/cdn_scenario.exe *)

let () =
  let graph = Vod_topology.Topologies.sprint () in
  let sc =
    Vod_core.Scenario.make ~days:28 ~requests_per_video_per_day:10.0 ~seed:33
      ~graph ~n_videos:800 ()
  in
  Printf.printf "network: %s (%d PoPs, %d links); %d requests over %d days\n\n"
    graph.Vod_topology.Graph.name
    (Vod_topology.Graph.n_nodes graph)
    (Vod_topology.Graph.n_links graph / 2)
    (Vod_workload.Trace.length sc.Vod_core.Scenario.trace)
    sc.Vod_core.Scenario.trace.Vod_workload.Trace.days;
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  let cfg =
    Vod_core.Pipeline.default_config ~scenario:sc ~disk_gb:disk
      ~link_capacity_mbps:600.0
  in
  let mip =
    {
      Vod_core.Pipeline.default_mip with
      Vod_core.Pipeline.engine =
        { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 40 };
    }
  in
  let schemes =
    [
      Vod_core.Pipeline.Mip mip;
      Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lru;
      Vod_core.Pipeline.Topk_lru 50;
    ]
  in
  let rows =
    List.map
      (fun scheme ->
        let r = Vod_core.Pipeline.run cfg scheme in
        let m = r.Vod_core.Pipeline.metrics in
        [
          r.Vod_core.Pipeline.scheme_name;
          Printf.sprintf "%.0f" (Vod_sim.Metrics.max_link_mbps m);
          Printf.sprintf "%.0f" (Vod_sim.Metrics.max_aggregate_mbps m);
          Printf.sprintf "%.1f%%" (100.0 *. Vod_sim.Metrics.local_fraction m);
          Printf.sprintf "%.0f" m.Vod_sim.Metrics.total_gb_hops;
        ])
      schemes
  in
  Vod_util.Table.print
    ~header:[ "scheme"; "peak link (Mb/s)"; "peak aggregate (Mb/s)"; "local"; "GB x hop" ]
    rows
