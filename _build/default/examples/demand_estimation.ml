(* Demand estimation for new releases (Sec. VI-A): compare the paper's
   series+blockbuster strategy against no estimation and an oracle, both
   on prediction accuracy (per-video request counts for the upcoming
   week) and on end-to-end placement performance.

     dune exec examples/demand_estimation.exe *)

let () =
  let sc = Vod_core.Scenario.backbone ~n_videos:800 ~seed:51 () in
  let catalog = sc.Vod_core.Scenario.catalog in
  let trace = sc.Vod_core.Scenario.trace in
  let week_start = 14 in
  (* --- prediction accuracy for the videos releasing next week --- *)
  let actual = Vod_workload.Trace.between_days trace ~day_lo:week_start ~day_hi:(week_start + 7) in
  let count_of reqs video =
    Array.fold_left
      (fun acc (r : Vod_workload.Trace.request) ->
        if r.Vod_workload.Trace.video = video then acc + 1 else acc)
      0 reqs
  in
  let new_videos =
    Array.to_list catalog.Vod_workload.Catalog.videos
    |> List.filter (fun (v : Vod_workload.Video.t) ->
           v.Vod_workload.Video.release_day >= week_start
           && v.Vod_workload.Video.release_day < week_start + 7)
  in
  Printf.printf "%d videos release during week %d\n\n" (List.length new_videos)
    (week_start / 7);
  let predicted =
    Vod_workload.Estimator.predict Vod_workload.Estimator.Series_blockbuster catalog
      trace ~week_start
  in
  let rows =
    List.filteri (fun i _ -> i < 8) new_videos
    |> List.map (fun (v : Vod_workload.Video.t) ->
           let kind =
             match v.Vod_workload.Video.kind with
             | Vod_workload.Video.Episode e -> Printf.sprintf "s%02d/ep%d" e.series e.episode
             | Vod_workload.Video.Blockbuster -> "blockbuster"
             | _ -> "other"
           in
           [
             kind;
             string_of_int (count_of predicted v.Vod_workload.Video.id);
             string_of_int (count_of actual v.Vod_workload.Video.id);
           ])
  in
  Vod_util.Table.print ~header:[ "new video"; "predicted"; "actual" ] rows;
  (* --- end-to-end effect on the placement --- *)
  print_newline ();
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  let cfg =
    Vod_core.Pipeline.default_config ~scenario:sc ~disk_gb:disk
      ~link_capacity_mbps:800.0
  in
  let engine = { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 35 } in
  let run est =
    let mip =
      { Vod_core.Pipeline.default_mip with Vod_core.Pipeline.estimator = est; engine }
    in
    let r = Vod_core.Pipeline.run cfg (Vod_core.Pipeline.Mip mip) in
    let m = r.Vod_core.Pipeline.metrics in
    [
      Vod_workload.Estimator.name est;
      Printf.sprintf "%.0f" (Vod_sim.Metrics.max_link_mbps m);
      Printf.sprintf "%.0f" m.Vod_sim.Metrics.total_gb_hops;
      Printf.sprintf "%.1f%%" (100.0 *. Vod_sim.Metrics.local_fraction m);
    ]
  in
  Vod_util.Table.print
    ~header:[ "estimator"; "peak link (Mb/s)"; "GB x hop"; "local" ]
    [
      run Vod_workload.Estimator.History_only;
      run Vod_workload.Estimator.Series_blockbuster;
      run Vod_workload.Estimator.Perfect;
    ];
  print_newline ();
  print_endline
    "The paper's point (Table VI): the simple series/blockbuster donor\n\
     strategy recovers most of the gap between no estimation and perfect\n\
     knowledge."
