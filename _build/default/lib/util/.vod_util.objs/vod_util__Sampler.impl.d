lib/util/sampler.ml: Array Float Rng Stack
