lib/util/table.mli:
