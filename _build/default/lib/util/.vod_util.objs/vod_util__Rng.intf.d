lib/util/rng.mli:
