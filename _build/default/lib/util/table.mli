(** Aligned ASCII tables, used to re-emit every paper table/figure from the
    benchmark harness in a diff-friendly form. *)

type align = Left | Right

(** [render ~header rows] renders a markdown-style table. All rows must
    have the same arity as [header]; raises [Invalid_argument] otherwise. *)
val render : ?align:align -> header:string list -> string list list -> string

(** [print] is [render] followed by [print_string]. *)
val print : ?align:align -> header:string list -> string list list -> unit

(** Fixed-point float formatting helper ([digits] defaults to 2). *)
val fmt_float : ?digits:int -> float -> string
