lib/core/pipeline.ml: Array List Printf Scenario Vod_cache Vod_epf Vod_placement Vod_sim Vod_topology Vod_workload
