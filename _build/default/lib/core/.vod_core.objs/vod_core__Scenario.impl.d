lib/core/scenario.ml: Array Vod_placement Vod_topology Vod_workload
