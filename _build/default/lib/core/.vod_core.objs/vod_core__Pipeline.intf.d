lib/core/pipeline.mli: Scenario Vod_cache Vod_epf Vod_placement Vod_sim Vod_workload
