lib/core/window_refine.ml: Array Float Hashtbl List Scenario Vod_cache Vod_epf Vod_placement Vod_sim Vod_topology Vod_workload
