lib/core/scenario.mli: Vod_topology Vod_workload
