lib/core/window_refine.mli: Scenario Vod_epf Vod_placement
