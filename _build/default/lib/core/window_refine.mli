(** Iterative peak-window refinement (paper Sec. VI-B): solve with the
    initial peak windows, replay the period, and keep adding the worst
    overloaded un-enforced window to |T| until no link exceeds capacity by
    more than [tolerance] — the paper's "general case" procedure. *)

type round_info = {
  windows : (float * float) array;
  report : Vod_placement.Solve.report;
  worst_overload : float;   (** max realized load/capacity - 1, outside |T| *)
  worst_window : float option;
}

type result = {
  rounds : round_info list;  (** oldest first *)
  final : Vod_placement.Solve.report;
  converged : bool;
}

(** [solve sc ~day0 ~disk_gb ~link_capacity_mbps ()] refines the week
    starting at [day0]. Defaults: 2 initial one-hour windows, up to 4
    rounds, 5 % overload tolerance. *)
val solve :
  ?params:Vod_epf.Engine.params ->
  ?max_rounds:int ->
  ?tolerance:float ->
  ?n_windows:int ->
  ?window_s:float ->
  Scenario.t ->
  day0:int ->
  disk_gb:float array ->
  link_capacity_mbps:float ->
  unit ->
  result
