lib/facility/ufl.mli:
