lib/facility/ufl.ml: Array Float
