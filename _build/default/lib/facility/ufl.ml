(* Uncapacitated facility location (UFL).

   Each per-video block of the decomposed placement LP is a UFL instance
   (paper Sec. V-C): facilities are VHOs (opening cost = disk-multiplier
   weight), clients are VHOs with demand (service cost = transfer cost
   plus bandwidth-multiplier weight). The EPF solver calls [local_search]
   to get a block step direction — the paper's "fast block heuristics
   [Charikar-Guha]" — and [dual_ascent] to obtain a valid per-block lower
   bound for the Lagrangian bound (DESIGN.md, "Valid lower bounds"). *)

type t = {
  open_cost : float array;          (* length n_fac, nonnegative *)
  service : float array array;      (* service.(client).(facility) >= 0 *)
}

type solution = {
  open_set : bool array;
  assign : int array;               (* assign.(client) = facility *)
  cost : float;
}

let n_facilities t = Array.length t.open_cost

let n_clients t = Array.length t.service

let validate t =
  let n = n_facilities t in
  if n = 0 then invalid_arg "Ufl: no facilities";
  Array.iter
    (fun o -> if o < 0.0 || Float.is_nan o then invalid_arg "Ufl: bad opening cost")
    t.open_cost;
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Ufl: service row arity";
      Array.iter
        (fun s -> if s < 0.0 || Float.is_nan s then invalid_arg "Ufl: bad service cost")
        row)
    t.service

(* Cost of a solution given its open set: each client served by its
   cheapest open facility. Returns (cost, assignment). *)
let eval_open t open_set =
  let n = n_facilities t in
  let nc = n_clients t in
  let assign = Array.make nc (-1) in
  let cost = ref 0.0 in
  Array.iteri (fun i o -> if open_set.(i) then cost := !cost +. o) t.open_cost;
  for j = 0 to nc - 1 do
    let best = ref (-1) and best_c = ref infinity in
    for i = 0 to n - 1 do
      if open_set.(i) && t.service.(j).(i) < !best_c then begin
        best := i;
        best_c := t.service.(j).(i)
      end
    done;
    if !best < 0 then invalid_arg "Ufl.eval_open: no open facility";
    assign.(j) <- !best;
    cost := !cost +. !best_c
  done;
  (!cost, assign)

let solution_of_open t open_set =
  let cost, assign = eval_open t open_set in
  { open_set = Array.copy open_set; assign; cost }

(* Greedy: start from the single best facility, then repeatedly open the
   facility with the largest net saving. O(n_fac^2 * n_cli). *)
let greedy t =
  validate t;
  let n = n_facilities t and nc = n_clients t in
  (* Best single facility. *)
  let single_cost i =
    let c = ref t.open_cost.(i) in
    for j = 0 to nc - 1 do
      c := !c +. t.service.(j).(i)
    done;
    !c
  in
  let first = ref 0 in
  for i = 1 to n - 1 do
    if single_cost i < single_cost !first then first := i
  done;
  let open_set = Array.make n false in
  open_set.(!first) <- true;
  (* current cheapest service per client *)
  let cur = Array.init nc (fun j -> t.service.(j).(!first)) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_i = ref (-1) and best_saving = ref 0.0 in
    for i = 0 to n - 1 do
      if not open_set.(i) then begin
        let saving = ref (-.t.open_cost.(i)) in
        for j = 0 to nc - 1 do
          let d = cur.(j) -. t.service.(j).(i) in
          if d > 0.0 then saving := !saving +. d
        done;
        if !saving > !best_saving +. 1e-12 then begin
          best_saving := !saving;
          best_i := i
        end
      end
    done;
    if !best_i >= 0 then begin
      open_set.(!best_i) <- true;
      for j = 0 to nc - 1 do
        if t.service.(j).(!best_i) < cur.(j) then cur.(j) <- t.service.(j).(!best_i)
      done;
      improved := true
    end
  done;
  solution_of_open t open_set

(* Add / drop / swap local search seeded by [greedy] — the classic
   Charikar-Guha style block heuristic. [max_iter] bounds the number of
   improving moves (each move strictly decreases cost). *)
let local_search ?(max_iter = 200) t =
  let n = n_facilities t in
  let sol = ref (greedy t) in
  let iter = ref 0 in
  let try_open_set os =
    (* At least one facility must stay open. *)
    if Array.exists (fun b -> b) os then begin
      let cost, _ = eval_open t os in
      if cost < !sol.cost -. 1e-12 then begin
        sol := solution_of_open t os;
        true
      end
      else false
    end
    else false
  in
  let improved = ref true in
  while !improved && !iter < max_iter do
    improved := false;
    incr iter;
    let base = Array.copy !sol.open_set in
    (* add moves *)
    for i = 0 to n - 1 do
      if not base.(i) then begin
        let os = Array.copy !sol.open_set in
        if not os.(i) then begin
          os.(i) <- true;
          if try_open_set os then improved := true
        end
      end
    done;
    (* drop moves *)
    for i = 0 to n - 1 do
      if base.(i) then begin
        let os = Array.copy !sol.open_set in
        if os.(i) then begin
          os.(i) <- false;
          if try_open_set os then improved := true
        end
      end
    done;
    (* swap moves: close one open, open one closed *)
    for i = 0 to n - 1 do
      if !sol.open_set.(i) then
        for i' = 0 to n - 1 do
          if not !sol.open_set.(i') then begin
            let os = Array.copy !sol.open_set in
            os.(i) <- false;
            os.(i') <- true;
            if try_open_set os then improved := true
          end
        done
    done
  done;
  !sol

(* Erlenkotter-style dual ascent for the UFL LP dual:

     max sum_j v_j   s.t.  sum_j max(0, v_j - s_ij) <= o_i  for all i.

   Any feasible v lower-bounds the LP (hence the ILP) optimum. We raise
   each v_j in cyclic passes to the largest value the slacks allow. The
   result is a maximal — not necessarily maximum — dual solution, which is
   exactly what the EPF lower-bound pass needs: validity, cheaply. *)
let dual_ascent ?(max_passes = 8) t =
  validate t;
  let n = n_facilities t and nc = n_clients t in
  let v = Array.init nc (fun j -> Array.fold_left Float.min infinity t.service.(j)) in
  let slack = Array.copy t.open_cost in
  (* slack_i = o_i - sum_j (v_j - s_ij)+ ; initially v_j = min service so
     every term is 0 except exact ties, which contribute 0 anyway. *)
  let raise_client j =
    (* Largest t such that for all i: (t - s_ij)+ <= slack_i + (v_j - s_ij)+ *)
    let tmax = ref infinity in
    for i = 0 to n - 1 do
      let s = t.service.(j).(i) in
      let already = Float.max 0.0 (v.(j) -. s) in
      let bound = s +. slack.(i) +. already in
      if bound < !tmax then tmax := bound
    done;
    if !tmax > v.(j) +. 1e-12 then begin
      let old = v.(j) in
      v.(j) <- !tmax;
      (* Update slacks. *)
      for i = 0 to n - 1 do
        let s = t.service.(j).(i) in
        let before = Float.max 0.0 (old -. s) in
        let after = Float.max 0.0 (v.(j) -. s) in
        slack.(i) <- slack.(i) -. (after -. before)
      done;
      true
    end
    else false
  in
  let pass = ref 0 and any = ref true in
  while !any && !pass < max_passes do
    any := false;
    incr pass;
    for j = 0 to nc - 1 do
      if raise_client j then any := true
    done
  done;
  let bound = Array.fold_left ( +. ) 0.0 v in
  (bound, v)

(* Exact optimum by enumerating open sets; for tests only. *)
let exact t =
  validate t;
  let n = n_facilities t in
  if n > 20 then invalid_arg "Ufl.exact: too many facilities (max 20)";
  let best = ref None in
  let open_set = Array.make n false in
  for mask = 1 to (1 lsl n) - 1 do
    for i = 0 to n - 1 do
      open_set.(i) <- mask land (1 lsl i) <> 0
    done;
    let cost, _ = eval_open t open_set in
    match !best with
    | Some (bc, _) when bc <= cost -> ()
    | _ -> best := Some (cost, Array.copy open_set)
  done;
  match !best with
  | Some (_, os) -> solution_of_open t os
  | None -> invalid_arg "Ufl.exact: no facilities"
