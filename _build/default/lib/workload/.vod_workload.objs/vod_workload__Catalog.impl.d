lib/workload/catalog.ml: Array List Video Vod_util
