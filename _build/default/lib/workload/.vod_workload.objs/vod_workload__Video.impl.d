lib/workload/video.ml: Fmt Printf
