lib/workload/demand.mli: Catalog Trace
