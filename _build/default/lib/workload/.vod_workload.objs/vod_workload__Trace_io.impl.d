lib/workload/trace_io.ml: Array Fun Printf String Trace
