lib/workload/tracegen.ml: Array Catalog Float Profiles Trace Video Vod_util
