lib/workload/estimator.mli: Catalog Trace
