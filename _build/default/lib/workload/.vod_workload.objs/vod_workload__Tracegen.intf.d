lib/workload/tracegen.mli: Catalog Trace Vod_util
