lib/workload/demand.ml: Array Catalog Hashtbl List Seq Stats Trace
