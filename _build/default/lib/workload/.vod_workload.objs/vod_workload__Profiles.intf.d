lib/workload/profiles.mli: Video
