lib/workload/trace.mli:
