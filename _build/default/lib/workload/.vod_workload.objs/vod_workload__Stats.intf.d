lib/workload/stats.mli: Catalog Hashtbl Trace
