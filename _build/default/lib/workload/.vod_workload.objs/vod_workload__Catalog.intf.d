lib/workload/catalog.mli: Video
