lib/workload/profiles.ml: Array Video
