lib/workload/video.mli: Format
