lib/workload/stats.ml: Array Catalog Hashtbl List Option Trace Video Vod_util
