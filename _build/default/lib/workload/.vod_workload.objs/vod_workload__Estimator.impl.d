lib/workload/estimator.ml: Array Catalog Hashtbl List Option Trace Video
