(* The catalog's unit of placement. The paper maps all content to four
   length classes (5 min / 30 min / 1 h / 2 h stored as 100 MB / 500 MB /
   1 GB / 2 GB) streaming at 2 Mb/s SD (Sec. VII-A). *)

type size_class = Clip | Show | Movie | Long_movie

type kind =
  | Regular                                        (* back-catalog movie / show *)
  | Music_video
  | Episode of { series : int; episode : int }     (* TV series content *)
  | Blockbuster

type t = {
  id : int;
  size_class : size_class;
  kind : kind;
  release_day : int;   (* day the video enters the catalog; <= 0 means it
                          predates the trace *)
  base_weight : float; (* steady-state popularity weight (Zipf w/ cutoff) *)
}

let size_gb v =
  match v.size_class with
  | Clip -> 0.1
  | Show -> 0.5
  | Movie -> 1.0
  | Long_movie -> 2.0

let duration_s v =
  match v.size_class with
  | Clip -> 300.0
  | Show -> 1800.0
  | Movie -> 3600.0
  | Long_movie -> 7200.0

(* All content is standard definition at 2 Mb/s (Sec. VII-A). *)
let rate_mbps (_ : t) = 2.0

let is_new ~day v = v.release_day > 0 && v.release_day > day - 7

let pp ppf v =
  let cls =
    match v.size_class with
    | Clip -> "clip"
    | Show -> "show"
    | Movie -> "movie"
    | Long_movie -> "long-movie"
  in
  let kind =
    match v.kind with
    | Regular -> "regular"
    | Music_video -> "music"
    | Episode { series; episode } -> Printf.sprintf "series%d/ep%d" series episode
    | Blockbuster -> "blockbuster"
  in
  Fmt.pf ppf "video#%d[%s,%s,release=%d]" v.id cls kind v.release_day
