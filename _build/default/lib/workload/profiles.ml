(* Temporal demand profiles.

   The paper observes (Sec. VI-B) that users request significantly more on
   Fridays and Saturdays and that the within-day mix peaks in the evening;
   the trace generator reproduces both so that peak-window selection
   (Table V) and working-set analysis (Fig. 2) are meaningful. *)

(* Relative request volume per day of week, day 0 = Monday. Fridays and
   Saturdays are the two busiest days, as in the paper. *)
let day_of_week_weight = [| 0.85; 0.80; 0.85; 0.95; 1.45; 1.60; 1.10 |]

(* Relative request volume per hour of day: quiet overnight, rising through
   the afternoon, prime-time peak 20:00-22:00. *)
let hour_of_day_weight =
  [|
    0.25; 0.15; 0.10; 0.08; 0.08; 0.10; 0.18; 0.30;
    0.45; 0.55; 0.60; 0.65; 0.75; 0.80; 0.85; 0.90;
    1.00; 1.15; 1.35; 1.60; 1.90; 1.95; 1.50; 0.70;
  |]

let day_weight day = day_of_week_weight.(day mod 7)

let hour_weight hour = hour_of_day_weight.(hour mod 24)

(* Freshness boost: a newly released video starts much hotter than its
   steady-state weight and decays exponentially over about a week
   (Fig. 4's episode request pattern: big first day, fast decay). [age] is
   in days since release; videos released before the trace (age large or
   release_day <= 0) sit at their steady-state weight. *)
let freshness_boost ~age =
  if age < 0.0 then 0.0 (* not yet released *)
  else 1.0 +. (8.0 *. exp (-.age /. 3.0))

(* Release spike in units of the Zipf head weight (rank-0 = 1.0). The
   spike is *additive*, not multiplicative: the paper's Fig. 4 shows
   release-day volume is comparable across episodes regardless of their
   steady-state popularity, and a multiplicative boost on a head-ranked
   title would let a single release dominate a whole day. *)
let release_spike = 0.6

(* Weight of a video on a given [day], combining steady-state popularity
   and the release spike. Unreleased videos have weight 0. *)
let video_day_weight (v : Video.t) ~day =
  if v.Video.release_day > 0 && day < v.Video.release_day then 0.0
  else if v.Video.release_day <= 0 then v.Video.base_weight
  else
    let age = float_of_int (day - v.Video.release_day) in
    v.Video.base_weight +. (release_spike *. exp (-.age /. 3.0))

(* Stable per-(VHO, video) taste multiplier in [1-spread, 1+spread]. This
   creates the regional differences in request mix that make placement
   nontrivial (the paper's VHOs see distinct demand patterns). The hash is
   a fixed integer mix so the multiplier is reproducible without storing
   an n_vhos x n_videos matrix. *)
let taste_multiplier ~spread ~vho ~video =
  let h = (vho * 0x9E3779B1) lxor (video * 0x85EBCA77) in
  let h = h lxor (h lsr 13) in
  let h = h * 0xC2B2AE35 land 0x3FFFFFFF in
  let u = float_of_int h /. float_of_int 0x40000000 in
  1.0 -. spread +. (2.0 *. spread *. u)
