(** Synthetic video catalog generator.

    Composition follows the paper's trace description (music videos,
    TV-series episodes with weekly releases, movies, 1-3 blockbusters per
    week); popularity follows the Zipf-with-exponential-cutoff shape of the
    YouTube distribution the paper uses for its synthetic traces. *)

type t = {
  videos : Video.t array;
  n_series : int;
  trace_days : int;
}

type params = {
  n : int;
  days : int;
  seed : int;
  zipf_exponent : float;
  zipf_cutoff : float;
  series_frac : float;
  clip_frac : float;
  episodes_per_series : int;
  blockbusters_per_week : int;
}

(** Paper-calibrated defaults (Zipf 0.8, cutoff at 35% of the catalog, 25%
    series content, 30% clips, 2 blockbusters/week). *)
val default_params : n:int -> days:int -> seed:int -> params

(** Number of videos. *)
val n_videos : t -> int

(** Lookup by id. *)
val video : t -> int -> Video.t

(** Total storage footprint of one copy of every video, in GB. *)
val total_size_gb : t -> float

(** [zipf_cutoff_weight ~exponent ~cutoff_frac ~n r] is the popularity
    weight of rank [r] (0-based) in a catalog of [n]. *)
val zipf_cutoff_weight :
  exponent:float -> cutoff_frac:float -> n:int -> int -> float

(** Deterministic catalog generation. Raises [Invalid_argument] on an
    empty catalog. *)
val generate : params -> t

(** Episodes of a series, ordered by episode number. *)
val series_episodes : t -> int -> Video.t list

(** The episode preceding [v] in its series, if any. *)
val previous_episode : t -> Video.t -> Video.t option
