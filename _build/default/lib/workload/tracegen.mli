(** Synthetic request-trace generator reproducing the properties the
    paper's evaluation depends on: population-proportional per-VHO volume,
    Zipf-with-cutoff popularity, Fri/Sat-heavy weekly and prime-time-peaked
    diurnal intensity, freshness spikes for weekly series episodes and
    blockbusters, and regional taste variation. *)

type params = {
  catalog : Catalog.t;
  populations : float array;
  mean_daily_requests : float;
  taste_spread : float;
  seed : int;
}

(** Defaults with [taste_spread = 0.6]. *)
val default_params :
  catalog:Catalog.t ->
  populations:float array ->
  mean_daily_requests:float ->
  seed:int ->
  params

(** Poisson sampler (exact for small lambda, normal approximation above 30);
    exposed for tests. *)
val poisson : Vod_util.Rng.t -> float -> int

(** Generate the full trace, deterministically from [params.seed]. *)
val generate : params -> Trace.t
