lib/topology/graph.mli:
