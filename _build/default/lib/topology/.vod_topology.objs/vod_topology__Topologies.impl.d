lib/topology/topologies.ml: Array Fun Graph Hashtbl List Printf Queue String Vod_util
