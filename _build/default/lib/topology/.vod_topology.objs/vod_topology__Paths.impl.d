lib/topology/paths.ml: Array Graph Queue
