lib/topology/topologies.mli: Graph
