(* Directed-graph representation of a VHO backbone. Every physical
   bidirectional link is stored as two directed links, because the MIP's
   bandwidth constraint (paper Eq. 6) is per directed link. *)

type link = {
  id : int;        (* dense index into link arrays *)
  src : int;
  dst : int;
}

type t = {
  n : int;                       (* number of VHOs (vertices) *)
  links : link array;            (* all directed links, indexed by id *)
  out_links : int array array;   (* out_links.(v) = ids of links leaving v *)
  name : string;                 (* topology name, for reporting *)
  populations : float array;     (* relative metro-area demand weight per VHO *)
}

let n_nodes t = t.n

let n_links t = Array.length t.links

let link t id = t.links.(id)

let reverse_link t id =
  let l = t.links.(id) in
  let ids = t.out_links.(l.dst) in
  let rec find k =
    if k >= Array.length ids then raise Not_found
    else
      let cand = t.links.(ids.(k)) in
      if cand.dst = l.src then cand.id else find (k + 1)
  in
  find 0

(* [create ~name ~n ~edges ~populations] builds a graph from undirected
   [edges]; each pair (u, v) yields directed links u->v and v->u. *)
let create ~name ~n ~edges ~populations =
  if Array.length populations <> n then invalid_arg "Graph.create: populations size mismatch";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then
        invalid_arg "Graph.create: edge endpoint out of range")
    edges;
  (* Reject duplicate undirected edges: they would double capacity silently. *)
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then invalid_arg "Graph.create: duplicate edge";
      Hashtbl.add seen key ())
    edges;
  let directed = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) edges in
  let links = Array.of_list (List.mapi (fun id (src, dst) -> { id; src; dst }) directed) in
  let out = Array.make n [] in
  Array.iter (fun l -> out.(l.src) <- l.id :: out.(l.src)) links;
  let out_links = Array.map (fun ids -> Array.of_list (List.rev ids)) out in
  { n; links; out_links; name; populations }

let is_connected t =
  if t.n = 0 then true
  else begin
    let visited = Array.make t.n false in
    let queue = Queue.create () in
    Queue.push 0 queue;
    visited.(0) <- true;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun lid ->
          let w = t.links.(lid).dst in
          if not visited.(w) then begin
            visited.(w) <- true;
            incr count;
            Queue.push w queue
          end)
        t.out_links.(v)
    done;
    !count = t.n
  end

let degree t v = Array.length t.out_links.(v)
