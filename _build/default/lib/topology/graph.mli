(** Directed-graph representation of a VHO backbone.

    Every physical bidirectional link is stored as two directed links,
    because the placement MIP's bandwidth constraint (paper Eq. 6) is per
    directed link. *)

type link = {
  id : int;   (** dense index into link arrays *)
  src : int;  (** tail VHO *)
  dst : int;  (** head VHO *)
}

type t = {
  n : int;
  links : link array;
  out_links : int array array;
  name : string;
  populations : float array;
}

(** Number of VHOs. *)
val n_nodes : t -> int

(** Number of directed links (twice the physical link count). *)
val n_links : t -> int

(** [link t id] looks up a directed link by id. *)
val link : t -> int -> link

(** [reverse_link t id] is the id of the opposite direction of the same
    physical link. Raises [Not_found] if absent (cannot happen for graphs
    built with [create]). *)
val reverse_link : t -> int -> int

(** [create ~name ~n ~edges ~populations] builds a graph from undirected
    edges; each pair (u, v) yields directed links u->v and v->u.
    Raises [Invalid_argument] on out-of-range endpoints, self-loops,
    duplicate edges, or a population vector of the wrong length. *)
val create :
  name:string -> n:int -> edges:(int * int) list -> populations:float array -> t

(** Whether the graph is (strongly, by symmetry) connected. *)
val is_connected : t -> bool

(** Out-degree of a VHO. *)
val degree : t -> int -> int
