(** Fixed shortest-path routing between every pair of VHOs (paper Sec. III:
    a predetermined path [P_ij] per ordered pair; only the set of links on
    the path matters to the MIP, and [P_ii] is empty). *)

type t

(** Precompute all-pairs shortest paths by hop count with deterministic
    tie-breaking. Raises [Invalid_argument] if the graph is disconnected. *)
val compute : Graph.t -> t

(** Hop count |P_ij|; 0 when [src = dst]. *)
val hops : t -> src:int -> dst:int -> int

(** Directed link ids on the fixed path from [src] to [dst], in order;
    the empty array when [src = dst]. *)
val path_links : t -> src:int -> dst:int -> int array

(** Maximum hop count over all ordered pairs. *)
val diameter : t -> int
