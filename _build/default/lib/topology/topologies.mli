(** Deterministic topology generators matching the node/link counts of the
    networks in the paper's evaluation (Sec. VII-A/E/F). Real AT&T and
    RocketFuel edge lists are proprietary / unavailable offline; DESIGN.md
    documents the substitution. *)

(** Zipf-like metro populations (exponent 0.8) with a seeded rank-to-node
    shuffle. *)
val zipf_populations : seed:int -> int -> float array

(** Ring + population-biased chords with exactly [target_edges] undirected
    edges. Raises [Invalid_argument] if [target_edges] is below [n] or
    above the complete-graph count. *)
val ring_plus_chords :
  name:string -> n:int -> target_edges:int -> seed:int -> Graph.t

(** The 55-VHO / 76-link IPTV backbone stand-in. *)
val backbone55 : ?seed:int -> unit -> Graph.t

(** RocketFuel-scale stand-ins: Tiscali 49 nodes / 86 links. *)
val tiscali : ?seed:int -> unit -> Graph.t

(** Sprint: 33 nodes / 69 links. *)
val sprint : ?seed:int -> unit -> Graph.t

(** Ebone: 23 nodes / 38 links. *)
val ebone : ?seed:int -> unit -> Graph.t

(** BFS tree over the same VHOs, rooted at the largest metro (Table IV). *)
val tree_of : Graph.t -> Graph.t

(** Full mesh over the same VHOs (Table IV). *)
val full_mesh_of : Graph.t -> Graph.t

(** Load a topology from a plain edge-list file ("u v" per line, [#]
    comments); node count is max id + 1. Optional companion populations
    file: one positive weight per line in node order (default: uniform).
    Raises [Invalid_argument] on malformed lines, zero edges, or a
    population count mismatch; [Sys_error] on unreadable files. *)
val load_edge_list :
  ?name:string -> ?populations_path:string -> path:string -> unit -> Graph.t

(** Indices of the [k] highest-population VHOs, ordered by decreasing
    population (used to map demand onto smaller networks, Sec. VII-F). *)
val top_population_nodes : Graph.t -> int -> int array
