lib/lp/simplex.mli:
