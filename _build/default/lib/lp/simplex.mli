(** Dense two-phase primal simplex with Bland's anti-cycling rule.

    The repository's stand-in for the commercial LP solver the paper uses
    as its baseline (Table III), and the ground-truth oracle for testing
    the decomposition solver on small instances. Suitable for problems up
    to a few thousand nonzeros; the point of the paper — and of this
    reproduction — is precisely that the full placement LP outgrows this
    kind of solver. *)

type rel = Le | Ge | Eq

type constr = {
  row : (int * float) list;  (** sparse (variable, coefficient) pairs *)
  rel : rel;
  rhs : float;
}

type problem = {
  n_vars : int;
  minimize : float array;
  constraints : constr list;
}

type result =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

(** Solve a minimization LP over nonnegative variables.
    Raises [Invalid_argument] if a constraint references a variable outside
    [0, n_vars). *)
val solve : problem -> result
