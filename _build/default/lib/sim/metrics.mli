(** Playout metrics: per-(directed link, time bin) average load in Mb/s
    plus serving counters — the raw material of the paper's Figs. 5/6/9/10
    and Tables II/V/VI. *)

type t = {
  bin_s : float;
  n_bins : int;
  n_links : int;
  record_from : float;
  link_load : float array array;
  per_vho_requests : int array;
  per_vho_local : int array;
  mutable requests : int;
  mutable local_served : int;
  mutable cache_hits : int;
  mutable remote_served : int;
  mutable not_cachable : int;
  mutable total_gb_hops : float;
  mutable total_gb_remote : float;
}

(** [create ~n_links ~horizon_s ()] with 5-minute bins by default; activity
    before [record_from] (warm-up) is not recorded. Pass [n_vhos] to also
    collect per-VHO serving counters. *)
val create :
  n_links:int ->
  ?n_vhos:int ->
  horizon_s:float ->
  ?bin_s:float ->
  ?record_from:float ->
  unit ->
  t

(** Whether a time falls inside the recording window. *)
val in_record_window : t -> float -> bool

(** Spread a stream of [rate_mbps] over [t0, t1) into a link's bins
    (overlap-weighted). *)
val add_stream : t -> link:int -> rate_mbps:float -> t0:float -> t1:float -> unit

(** Per-bin max over links (Fig. 5). *)
val peak_series : t -> float array

(** Per-bin sum over links (Fig. 6). *)
val aggregate_series : t -> float array

(** Peak of [peak_series]. *)
val max_link_mbps : t -> float

(** Peak of [aggregate_series]. *)
val max_aggregate_mbps : t -> float

(** Fraction of recorded requests served locally. *)
val local_fraction : t -> float

(** Alias of [local_fraction] (the paper's cache hit rate). *)
val hit_rate : t -> float

(** Per-VHO local-serving fraction; empty unless created with [n_vhos]. *)
val per_vho_local_fraction : t -> float array
