(** Trace playout engine: drives a fleet with time-sorted requests,
    streaming remote fetches over every link of the fixed path for the
    playback duration. *)

(** Incremental playout of one batch into existing metrics (the weekly
    pipeline plays segment by segment as placements change). *)
val play :
  Metrics.t ->
  Vod_topology.Paths.t ->
  Vod_workload.Catalog.t ->
  Vod_cache.Fleet.t ->
  Vod_workload.Trace.request array ->
  unit

(** One-shot playout of a full trace. [record_from] excludes the cache
    warm-up period from the counters and link loads. *)
val run :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  trace:Vod_workload.Trace.t ->
  ?bin_s:float ->
  ?record_from:float ->
  unit ->
  Metrics.t
