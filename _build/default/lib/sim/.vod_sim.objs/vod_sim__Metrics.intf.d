lib/sim/metrics.mli:
