lib/sim/sim.mli: Metrics Vod_cache Vod_topology Vod_workload
