lib/sim/sim.ml: Array Logs Metrics Vod_cache Vod_topology Vod_workload
