lib/sim/metrics.ml: Array Float Vod_util
