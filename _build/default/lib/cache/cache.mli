(** A single VHO's dynamic cache (LRU, LFU or LRFU) with stream locking: a
    video being streamed cannot be evicted until playback ends, and when
    every resident entry is busy an incoming video is not cachable — the
    two effects behind the paper's Fig. 9.

    [Lrfu lambda] is the recency/frequency spectrum of Lee et al. (the
    paper's ref. [18]): lambda close to 0 behaves like LFU, lambda = 1
    like LRU. *)

type policy = Lru | Lfu | Lrfu of float

type t

(** Raises [Invalid_argument] on negative capacity or an LRFU lambda
    outside (0, 1]. Zero capacity is a valid always-miss cache. *)
val create : policy:policy -> capacity_gb:float -> t

val capacity_gb : t -> float

(** Bytes currently resident (GB). *)
val used_gb : t -> float

(** Number of resident videos. *)
val size : t -> int

val mem : t -> int -> bool

(** Record a hit: bump recency/frequency, extend the stream lock to
    [busy_until]. Returns false on miss. *)
val touch : t -> int -> busy_until:float -> bool

(** [insert t video ~size_gb ~now ~busy_until] = [(inserted, evicted)].
    Evicts idle entries by policy as needed; fails (inserted = false) when
    the video exceeds capacity or all resident entries are busy. Evictions
    performed before a failed admission stay evicted. *)
val insert :
  t -> int -> size_gb:float -> now:float -> busy_until:float -> bool * int list

(** Iterate over resident (video, size_gb). *)
val iter : (int -> float -> unit) -> t -> unit
