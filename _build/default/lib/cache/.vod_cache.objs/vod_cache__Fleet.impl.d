lib/cache/fleet.ml: Array Cache Float Hashtbl List Printf Replica_index Vod_placement Vod_topology Vod_util Vod_workload
