lib/cache/fleet.mli: Cache Vod_placement Vod_topology Vod_workload
