lib/cache/replica_index.ml: Array List Option Vod_topology
