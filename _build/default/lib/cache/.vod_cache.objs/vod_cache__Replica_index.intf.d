lib/cache/replica_index.mli: Vod_topology
