lib/cache/cache.mli:
