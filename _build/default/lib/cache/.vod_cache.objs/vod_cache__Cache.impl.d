lib/cache/cache.ml: Hashtbl Option
