lib/epf/engine.ml: Array Float List Logs Option Sparse Vod_util
