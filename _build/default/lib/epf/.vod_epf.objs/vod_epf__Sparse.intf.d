lib/epf/sparse.mli:
