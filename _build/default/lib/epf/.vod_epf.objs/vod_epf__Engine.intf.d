lib/epf/engine.mli: Sparse
