lib/epf/sparse.ml: Array Float Hashtbl List Option
