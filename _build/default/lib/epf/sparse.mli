(** Sparse nonnegative row-usage vectors: (row, value) pairs sorted by row
    id. The footprint of a block solution on the coupling constraints. *)

type t = (int * float) array

val empty : t

(** Build from an unsorted association list, combining duplicates and
    dropping zeros. *)
val of_assoc : (int * float) list -> t

(** [axpby a x b y] = a*x + b*y. *)
val axpby : float -> t -> float -> t -> t

(** [sub x y] = x - y. *)
val sub : t -> t -> t

(** [scale a x] = a*x. *)
val scale : float -> t -> t

(** [add_into acc a x]: acc += a*x (dense accumulator). *)
val add_into : float array -> float -> t -> unit

(** Dot product against a dense price vector. *)
val dot : float array -> t -> float

val iter : (int -> float -> unit) -> t -> unit

(** Row ids in the support. *)
val support : t -> int array
