(** End-to-end placement solve: block construction, EPF decomposition,
    rounding, extraction. *)

type report = {
  solution : Solution.t;
  lp_objective : float;    (** fractional objective before rounding *)
  lp_violation : float;    (** max relative violation before rounding *)
  passes : int;
  seconds : float;         (** wall-clock solve time *)
  words_allocated : float; (** words allocated during the solve (memory proxy) *)
}

(** Solve an instance with the given engine parameters (defaults:
    [Vod_epf.Engine.default_params]). *)
val solve : ?params:Vod_epf.Engine.params -> Instance.t -> report
