(** Per-video block oracles for the EPF engine: each video's subproblem is
    a priced uncapacitated facility location instance over the VHOs
    (paper Sec. V-C). *)

(** An integral block decision: where the video is stored and which VHO
    serves each demand site. *)
type choice = {
  video : int;
  open_vhos : int array;      (** VHOs storing the video, sorted *)
  serve : (int * int) array;  (** (client vho, serving vho) pairs *)
}

type client = {
  vho : int;
  a : float;        (** aggregate requests a_j^m *)
  f : float array;  (** concurrency per peak window f_j^m(t) *)
}

type block = {
  video : int;
  size_gb : float;
  rate_mbps : float;
  clients : client array;
}

(** Sparse per-video demand assembly from an instance. *)
val build_blocks : Instance.t -> block array

(** The priced UFL instance of a block under given prices. *)
val ufl_of_block :
  Instance.t ->
  block ->
  obj_price:float ->
  row_price:float array ->
  Vod_facility.Ufl.t

(** Translate a UFL solution into an engine point (true objective
    contribution + coupling-row usage). *)
val point_of_solution :
  Instance.t -> block -> Vod_facility.Ufl.solution -> choice Vod_epf.Engine.point

(** Warm-start disk prices: the dual values implied by a greedy
    demand-density disk fill (per-GB marginal density per VHO). *)
val warm_disk_prices : Instance.t -> float array

(** Oracle for one block: greedy UFL for [optimize], dual ascent for
    [lower_bound]; [warm_prices] (full row layout) seeds the initial
    point. *)
val oracle_of_block :
  ?warm_prices:float array -> Instance.t -> block -> choice Vod_epf.Engine.oracle

(** Blocks plus their oracles for a whole instance; [warm_start] (default
    true) seeds each block's initial point with the greedy-fill duals. *)
val oracles :
  ?warm_start:bool ->
  Instance.t ->
  block array * choice Vod_epf.Engine.oracle array

(** Local-search re-optimization of one block (rounding refinement). *)
val best_integral :
  Instance.t ->
  block ->
  obj_price:float ->
  row_price:float array ->
  choice Vod_epf.Engine.point
