(* Chunked placement (paper Sec. V-B): "If we wanted to break up videos
   into chunks and store their pieces in separate locations ... we could
   accomplish that by treating each chunk as a distinct element of M."

   Because all content streams at the same constant bitrate, a chunk of a
   given byte size is also a fixed slice of playback time, so chunks map
   exactly onto the existing size classes (0.1 / 0.5 / 1 / 2 GB). [split]
   derives a catalog in which every video becomes ceil(size / chunk_gb)
   chunk-videos, and [demand] derives the matching MIP inputs: each chunk
   inherits the parent's request counts (every request needs every chunk)
   while peak-window concurrency splits evenly across chunks (a stream
   plays one chunk at a time). Placing the derived instance packs disks at
   chunk granularity — the win this module exists to measure (see the
   `ablation` bench). *)

type t = {
  original : Vod_workload.Catalog.t;
  chunked : Vod_workload.Catalog.t;
  parent_of : int array;          (* chunk id -> parent video id *)
  chunks_of : int array array;    (* parent video id -> chunk ids *)
  chunk_gb : float;
}

let class_of_chunk_gb = function
  | 0.1 -> Vod_workload.Video.Clip
  | 0.5 -> Vod_workload.Video.Show
  | 1.0 -> Vod_workload.Video.Movie
  | 2.0 -> Vod_workload.Video.Long_movie
  | _ -> invalid_arg "Chunking.split: chunk_gb must be one of 0.1, 0.5, 1.0, 2.0"

let split (catalog : Vod_workload.Catalog.t) ~chunk_gb =
  let chunk_class = class_of_chunk_gb chunk_gb in
  let n = Vod_workload.Catalog.n_videos catalog in
  let chunks_of = Array.make n [||] in
  let rev_chunks = ref [] in
  let parent_rev = ref [] in
  let next_id = ref 0 in
  for video = 0 to n - 1 do
    let v = Vod_workload.Catalog.video catalog video in
    let size = Vod_workload.Video.size_gb v in
    let count = max 1 (int_of_float (ceil ((size /. chunk_gb) -. 1e-9))) in
    let ids = Array.make count 0 in
    for k = 0 to count - 1 do
      let id = !next_id in
      incr next_id;
      ids.(k) <- id;
      parent_rev := video :: !parent_rev;
      (* A chunk smaller than chunk_gb (the tail of a video whose size is
         not a multiple) still occupies a whole chunk slot; with the
         paper's class sizes all splits are exact, so this is moot but
         kept safe. *)
      let chunk =
        {
          Vod_workload.Video.id;
          size_class = (if size < chunk_gb then v.Vod_workload.Video.size_class else chunk_class);
          kind = Vod_workload.Video.Regular;
          release_day = v.Vod_workload.Video.release_day;
          base_weight = v.Vod_workload.Video.base_weight;
        }
      in
      rev_chunks := chunk :: !rev_chunks
    done;
    chunks_of.(video) <- ids
  done;
  let chunked =
    {
      Vod_workload.Catalog.videos = Array.of_list (List.rev !rev_chunks);
      n_series = catalog.Vod_workload.Catalog.n_series;
      trace_days = catalog.Vod_workload.Catalog.trace_days;
    }
  in
  {
    original = catalog;
    chunked;
    parent_of = Array.of_list (List.rev !parent_rev);
    chunks_of;
    chunk_gb;
  }

let n_chunks t = Array.length t.parent_of

(* Derived demand: chunk requests mirror the parent's; concurrency per
   chunk is the parent's divided by the chunk count (a stream occupies
   one chunk at a time, so the per-link load of the video splits across
   its chunks' — possibly different — serving paths). *)
let demand t (d : Vod_workload.Demand.t) =
  let n = n_chunks t in
  let a = Array.make n [||] in
  let f =
    Array.map (fun _ -> Array.make n [||]) d.Vod_workload.Demand.f
  in
  Array.iteri
    (fun parent ids ->
      let count = float_of_int (Array.length ids) in
      Array.iter
        (fun chunk ->
          a.(chunk) <- d.Vod_workload.Demand.a.(parent);
          Array.iteri
            (fun w fw ->
              f.(w).(chunk) <-
                Array.map (fun (vho, c) -> (vho, c /. count)) fw.(parent))
            d.Vod_workload.Demand.f)
        ids)
    t.chunks_of;
  {
    Vod_workload.Demand.n_videos = n;
    n_vhos = d.Vod_workload.Demand.n_vhos;
    a;
    f;
    windows = d.Vod_workload.Demand.windows;
    total_requests = d.Vod_workload.Demand.total_requests;
  }

(* Build the chunked MIP instance mirroring [inst]. *)
let instance (inst : Instance.t) ~chunk_gb =
  let t = split inst.Instance.catalog ~chunk_gb in
  let d = demand t inst.Instance.demand in
  ( t,
    Instance.create ~alpha_cost:inst.Instance.alpha_cost
      ~beta_cost:inst.Instance.beta_cost
      ~placement_weight:inst.Instance.placement_weight
      ~origin:inst.Instance.origin ~graph:inst.Instance.graph
      ~catalog:t.chunked ~demand:d ~disk_gb:inst.Instance.disk_gb
      ~link_capacity_mbps:inst.Instance.link_capacity_mbps () )

(* Per-parent replica statistics of a chunked solution: the number of
   *full* copies (min over its chunks) and the total chunk copies. *)
let parent_copies t (sol : Solution.t) parent =
  let ids = t.chunks_of.(parent) in
  let full = ref max_int and total = ref 0 in
  Array.iter
    (fun chunk ->
      let c = Solution.copies sol chunk in
      if c < !full then full := c;
      total := !total + c)
    ids;
  ((if !full = max_int then 0 else !full), !total)
