(** Chunked placement (paper Sec. V-B): treat fixed-size pieces of every
    video as distinct placement items, so pieces of one video can live in
    different VHOs and disks pack at chunk granularity. *)

type t = {
  original : Vod_workload.Catalog.t;
  chunked : Vod_workload.Catalog.t;
  parent_of : int array;        (** chunk id -> parent video id *)
  chunks_of : int array array;  (** parent video id -> chunk ids *)
  chunk_gb : float;
}

(** [split catalog ~chunk_gb] derives the chunk catalog. [chunk_gb] must
    be one of the class sizes (0.1 / 0.5 / 1.0 / 2.0 GB) so chunks remain
    exact playback slices; raises [Invalid_argument] otherwise. *)
val split : Vod_workload.Catalog.t -> chunk_gb:float -> t

(** Total number of chunks. *)
val n_chunks : t -> int

(** Derive the chunked MIP demand: chunks inherit the parent's request
    counts; peak concurrency splits evenly across chunks. *)
val demand : t -> Vod_workload.Demand.t -> Vod_workload.Demand.t

(** Mirror an instance into its chunked equivalent. *)
val instance : Instance.t -> chunk_gb:float -> t * Instance.t

(** [(full, total)] copies of a parent video: full = min copies over its
    chunks, total = sum of chunk copies. *)
val parent_copies : t -> Solution.t -> int -> int * int
