(** Placement import/export: [store,video,vho,] and
    [route,video,client,server] CSV records, so placements can be handed
    to a delivery system or an existing deployment's placement can be
    loaded and evaluated. Loaded solutions carry NaN objective/bound
    statistics (they are placements, not solver reports). *)

val header : string

(** Write a placement; overwrites [path]. *)
val save_csv : Solution.t -> string -> unit

(** Load and validate a placement. Raises [Invalid_argument] on malformed
    records, out-of-range ids, or a video with no copy; [Sys_error] if the
    file is unreadable. *)
val load_csv : n_vhos:int -> n_videos:int -> string -> Solution.t
