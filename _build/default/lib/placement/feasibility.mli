(** Feasibility probing and capacity sweeps (paper Fig. 11, Table IV,
    Fig. 13): binary searches over disk or link budgets for the smallest
    capacity at which the EPF engine finds an epsilon-feasible placement. *)

(** FEAS-mode engine parameters (no objective row, 40 passes). *)
val default_probe_params : Vod_epf.Engine.params

(** Whether the engine finds an epsilon-feasible placement. *)
val feasible : ?params:Vod_epf.Engine.params -> Instance.t -> bool

(** Generic monotone bisection; [None] if even [hi] is infeasible. *)
val binary_search_min :
  lo:float -> hi:float -> tol:float -> feasible_at:(float -> bool) -> float option

(** Minimum aggregate-disk multiple (library-size units) for a given
    uniform link capacity; [disk_of] maps the multiplier to per-VHO GB. *)
val min_disk_multiplier :
  ?params:Vod_epf.Engine.params ->
  ?lo:float ->
  ?hi:float ->
  ?tol:float ->
  graph:Vod_topology.Graph.t ->
  catalog:Vod_workload.Catalog.t ->
  demand:Vod_workload.Demand.t ->
  link_capacity_mbps:float ->
  disk_of:(float -> float array) ->
  unit ->
  float option

(** Minimum uniform link capacity (Mb/s) for a fixed disk vector. *)
val min_link_capacity :
  ?params:Vod_epf.Engine.params ->
  ?lo:float ->
  ?hi:float ->
  ?tol:float ->
  graph:Vod_topology.Graph.t ->
  catalog:Vod_workload.Catalog.t ->
  demand:Vod_workload.Demand.t ->
  disk_gb:float array ->
  unit ->
  float option
