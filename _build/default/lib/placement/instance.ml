(* A placement-MIP instance: the paper's Table I inputs.

   Rows of the coupling-constraint system (shared with the EPF engine):
     rows [0, n)                     — disk constraints, capacity D_i (GB);
     rows [n + w*|L| + l]            — link constraint for peak window w and
                                       directed link l, capacity B_l (Mb/s). *)

type t = {
  graph : Vod_topology.Graph.t;
  paths : Vod_topology.Paths.t;
  catalog : Vod_workload.Catalog.t;
  demand : Vod_workload.Demand.t;
  disk_gb : float array;            (* D_i per VHO *)
  link_capacity_mbps : float array; (* B_l per directed link *)
  alpha_cost : float;               (* per-link transfer cost (Eq. 1) *)
  beta_cost : float;                (* fixed local-serving cost (Eq. 1) *)
  placement_weight : float;         (* w in Eq. 11; 0 disables *)
  origin : int;                     (* origin VHO o for placement transfers *)
}

(* Default beta = 1 (one "hop" worth of local-serving cost). By
   Proposition 5.1 the optimal placements are independent of beta as long
   as alpha > 0, but a strictly positive beta anchors the objective at
   the constant term (Eq. 10), which keeps the decomposition's Lagrangian
   bounds — and hence its objective target B — on the right scale from
   the first pass. *)
let create ?(alpha_cost = 1.0) ?(beta_cost = 1.0) ?(placement_weight = 0.0)
    ?origin ~graph ~catalog ~demand ~disk_gb ~link_capacity_mbps () =
  let n = Vod_topology.Graph.n_nodes graph in
  if Array.length disk_gb <> n then invalid_arg "Instance.create: disk_gb arity";
  if Array.length link_capacity_mbps <> Vod_topology.Graph.n_links graph then
    invalid_arg "Instance.create: link capacity arity";
  Array.iter
    (fun d -> if d <= 0.0 then invalid_arg "Instance.create: disk must be positive")
    disk_gb;
  Array.iter
    (fun b -> if b <= 0.0 then invalid_arg "Instance.create: link capacity must be positive")
    link_capacity_mbps;
  if demand.Vod_workload.Demand.n_vhos <> n then
    invalid_arg "Instance.create: demand/graph VHO count mismatch";
  let origin =
    match origin with
    | Some o -> o
    | None ->
        (* Default origin: the largest metro. *)
        let best = ref 0 in
        Array.iteri
          (fun i p -> if p > graph.Vod_topology.Graph.populations.(!best) then best := i)
          graph.Vod_topology.Graph.populations;
        !best
  in
  let paths = Vod_topology.Paths.compute graph in
  {
    graph;
    paths;
    catalog;
    demand;
    disk_gb;
    link_capacity_mbps;
    alpha_cost;
    beta_cost;
    placement_weight;
    origin;
  }

let n_vhos t = Vod_topology.Graph.n_nodes t.graph

let n_links t = Vod_topology.Graph.n_links t.graph

let n_windows t = Array.length t.demand.Vod_workload.Demand.windows

(* Transfer cost per GB from i to j (Eq. 1). *)
let cost t ~src ~dst =
  (t.alpha_cost *. float_of_int (Vod_topology.Paths.hops t.paths ~src ~dst))
  +. t.beta_cost

(* Coupling-row layout. *)
let disk_row (_ : t) vho = vho

let link_row t ~window ~link = n_vhos t + (window * n_links t) + link

let n_rows t = n_vhos t + (n_windows t * n_links t)

let capacities t =
  Array.init (n_rows t) (fun r ->
      if r < n_vhos t then t.disk_gb.(r)
      else t.link_capacity_mbps.((r - n_vhos t) mod n_links t))

(* Uniform helpers for experiment setup. *)
let uniform_disk ~total_gb n = Array.make n (total_gb /. float_of_int n)

let uniform_links graph mbps =
  Array.make (Vod_topology.Graph.n_links graph) mbps
