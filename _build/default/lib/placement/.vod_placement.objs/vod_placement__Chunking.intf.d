lib/placement/chunking.mli: Instance Solution Vod_workload
