lib/placement/instance.ml: Array Vod_topology Vod_workload
