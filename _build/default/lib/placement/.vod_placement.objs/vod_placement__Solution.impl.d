lib/placement/solution.ml: Array Blocks Hashtbl Instance List Vod_epf Vod_topology Vod_workload
