lib/placement/solution_io.mli: Solution
