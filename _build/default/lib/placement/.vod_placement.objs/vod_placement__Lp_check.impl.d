lib/placement/lp_check.ml: Array Instance List Vod_lp Vod_topology Vod_workload
