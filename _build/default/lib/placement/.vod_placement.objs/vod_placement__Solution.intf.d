lib/placement/solution.mli: Blocks Hashtbl Instance Vod_epf Vod_topology Vod_workload
