lib/placement/blocks.mli: Instance Vod_epf Vod_facility
