lib/placement/solve.ml: Blocks Gc Instance Logs Solution Unix Vod_epf
