lib/placement/feasibility.mli: Instance Vod_epf Vod_topology Vod_workload
