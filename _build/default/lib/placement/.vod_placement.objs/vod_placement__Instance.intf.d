lib/placement/instance.mli: Vod_topology Vod_workload
