lib/placement/solution_io.ml: Array Fun Hashtbl List Printf Solution String
