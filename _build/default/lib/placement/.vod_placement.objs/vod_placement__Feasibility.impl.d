lib/placement/feasibility.ml: Blocks Instance Vod_epf
