lib/placement/chunking.ml: Array Instance List Solution Vod_workload
