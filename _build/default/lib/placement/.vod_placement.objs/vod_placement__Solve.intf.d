lib/placement/solve.mli: Instance Solution Vod_epf
