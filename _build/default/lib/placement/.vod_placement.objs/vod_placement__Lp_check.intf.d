lib/placement/lp_check.mli: Instance Vod_lp
