lib/placement/blocks.ml: Array Float Hashtbl Instance List Vod_epf Vod_facility Vod_topology Vod_workload
