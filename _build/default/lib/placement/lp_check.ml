(* The full placement LP (paper Eqs. 2-8, with the integrality constraint
   relaxed to 0 <= y <= 1), built explicitly for the simplex reference
   solver. This is the "CPLEX" side of Table III and the ground-truth
   oracle for testing the EPF decomposition: both solvers must agree on
   small instances.

   Variable layout per video m (blocks of n + n^2 variables):
     y_i^m   at  m*(n + n^2) + i
     x_ij^m  at  m*(n + n^2) + n + i*n + j      (i serves j) *)

let block_size n = n + (n * n)

let y_var ~n ~video i = (video * block_size n) + i

let x_var ~n ~video ~server ~client =
  (video * block_size n) + n + (server * n) + client

let build (inst : Instance.t) =
  let n = Instance.n_vhos inst in
  let demand = inst.Instance.demand in
  let n_videos = demand.Vod_workload.Demand.n_videos in
  let nw = Instance.n_windows inst in
  let n_vars = n_videos * block_size n in
  let minimize = Array.make n_vars 0.0 in
  let constraints = ref [] in
  let add row rel rhs = constraints := { Vod_lp.Simplex.row; rel; rhs } :: !constraints in
  (* Dense per-video demand lookups. *)
  let a_of = Array.make n 0.0 in
  let f_of = Array.make_matrix nw n 0.0 in
  for video = 0 to n_videos - 1 do
    let v = Vod_workload.Catalog.video inst.Instance.catalog video in
    let s = Vod_workload.Video.size_gb v in
    let r = Vod_workload.Video.rate_mbps v in
    Array.fill a_of 0 n 0.0;
    Array.iter (fun (j, c) -> a_of.(j) <- c) demand.Vod_workload.Demand.a.(video);
    for w = 0 to nw - 1 do
      Array.fill f_of.(w) 0 n 0.0;
      Array.iter (fun (j, c) -> f_of.(w).(j) <- c) demand.Vod_workload.Demand.f.(w).(video)
    done;
    for i = 0 to n - 1 do
      (* Optional placement-transfer term (Eq. 11). *)
      if inst.Instance.placement_weight > 0.0 then
        minimize.(y_var ~n ~video i) <-
          inst.Instance.placement_weight *. s
          *. Instance.cost inst ~src:inst.Instance.origin ~dst:i;
      (* y <= 1 *)
      add [ (y_var ~n ~video i, 1.0) ] Vod_lp.Simplex.Le 1.0;
      for j = 0 to n - 1 do
        (* Objective: s * a_j * c_ij * x_ij (Eq. 2). *)
        minimize.(x_var ~n ~video ~server:i ~client:j) <-
          s *. a_of.(j) *. Instance.cost inst ~src:i ~dst:j;
        (* x_ij <= y_i (Eq. 4). *)
        add
          [ (x_var ~n ~video ~server:i ~client:j, 1.0); (y_var ~n ~video i, -1.0) ]
          Vod_lp.Simplex.Le 0.0
      done
    done;
    (* sum_i x_ij = 1 for every client j (Eq. 3). *)
    for j = 0 to n - 1 do
      let row = List.init n (fun i -> (x_var ~n ~video ~server:i ~client:j, 1.0)) in
      add row Vod_lp.Simplex.Eq 1.0
    done;
    ignore r
  done;
  (* Disk constraints (Eq. 5). *)
  for i = 0 to n - 1 do
    let row =
      List.init n_videos (fun video ->
          let v = Vod_workload.Catalog.video inst.Instance.catalog video in
          (y_var ~n ~video i, Vod_workload.Video.size_gb v))
    in
    add row Vod_lp.Simplex.Le inst.Instance.disk_gb.(i)
  done;
  (* Link constraints (Eq. 6): for each window w and directed link l,
     sum over videos and (i, j) with l on P_ij of r * f_j(w) * x_ij. *)
  let n_links = Instance.n_links inst in
  for w = 0 to nw - 1 do
    let rows = Array.make n_links [] in
    for video = 0 to n_videos - 1 do
      let v = Vod_workload.Catalog.video inst.Instance.catalog video in
      let r = Vod_workload.Video.rate_mbps v in
      Array.iter
        (fun (j, conc) ->
          let load = r *. conc in
          if load > 0.0 then
            for i = 0 to n - 1 do
              if i <> j then
                Array.iter
                  (fun l ->
                    rows.(l) <-
                      (x_var ~n ~video ~server:i ~client:j, load) :: rows.(l))
                  (Vod_topology.Paths.path_links inst.Instance.paths ~src:i ~dst:j)
            done)
        demand.Vod_workload.Demand.f.(w).(video)
    done;
    Array.iteri
      (fun l row ->
        if row <> [] then
          add row Vod_lp.Simplex.Le inst.Instance.link_capacity_mbps.(l))
      rows
  done;
  { Vod_lp.Simplex.n_vars; minimize; constraints = List.rev !constraints }

(* Solve the full LP with the simplex reference. *)
let solve_reference inst = Vod_lp.Simplex.solve (build inst)
